// Lightweight event trace. Components can record named events; tests use the
// trace to assert exact timing, and debugging dumps it as text. Disabled
// traces cost one branch per record.
//
// Events are typed so exporters (src/obs/chrome_trace.hpp) can render them
// as a timeline: instants (points), begin/end pairs (durations on the
// source's track), and counters (numeric time series). The original
// `record()` keeps its instant semantics, so existing callers and tests are
// unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axihc {

/// How an event renders on a timeline.
enum class TraceKind : std::uint8_t {
  kInstant,    // a point in time
  kBegin,      // start of a duration slice on the source's track
  kEnd,        // end of the most recent slice with the same (source, event)
  kCounter,    // a numeric sample (value field)
  kFlowStart,  // origin of a flow arrow (value = flow id)
  kFlowEnd,    // terminus of the flow arrow with the same id
};

struct TraceEvent {
  Cycle cycle;
  std::string source;
  std::string event;
  TraceKind kind = TraceKind::kInstant;
  double value = 0.0;  // kCounter payload; unused otherwise
};

class EventTrace;

/// Per-island staging sink for the parallel tick engine. While a compute
/// phase runs, each worker installs its island's buffer as the calling
/// thread's sink; every EventTrace::record lands here (tagged with the
/// global registration index of the component being ticked) instead of in
/// the shared trace. After the phase, merge_staged_traces() replays the
/// events into their traces in ascending registration-index order — the
/// exact order the serial kernel would have produced, so the trace stream
/// (including capacity-drop accounting) is bit-identical at any thread
/// count. Within one island, components tick in ascending index, so each
/// buffer is already sorted and the merge is a k-way front pick.
class TraceStagingBuffer {
 public:
  [[nodiscard]] bool empty() const { return staged_.empty(); }
  void clear() { staged_.clear(); }

  /// Installs `buf` as the calling thread's staging sink (null = direct
  /// recording). Only the tick engine installs buffers.
  static void install(TraceStagingBuffer* buf);
  [[nodiscard]] static TraceStagingBuffer* current();

  /// Tags subsequently staged events with the registration index of the
  /// component about to tick.
  static void set_sequence(std::uint32_t seq);

 private:
  friend class EventTrace;
  friend void merge_staged_traces(TraceStagingBuffer* const* buffers,
                                  std::size_t n);

  struct Entry {
    std::uint32_t seq;
    EventTrace* trace;
    TraceEvent event;
  };
  std::vector<Entry> staged_;
};

/// Replays all staged events into their traces in ascending registration
/// order and clears the buffers. Runs on the dispatching thread only.
void merge_staged_traces(TraceStagingBuffer* const* buffers, std::size_t n);

class EventTrace {
 public:
  EventTrace() = default;
  ~EventTrace();
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  void enable(bool on);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True while any trace in the process is enabled. The tick engine skips
  /// the whole staging path (thread-local sink install + per-component
  /// sequence tagging) when this is false — the common benchmark/production
  /// case — so untraced runs pay nothing for trace determinism. Sampled
  /// once per cycle; traces are expected to be enabled between runs, not
  /// from inside a component's tick.
  [[nodiscard]] static bool any_enabled();

  /// Caps the number of retained events, like a fixed-capacity hardware
  /// buffer (common/ring_buffer.hpp): once full, later events are discarded
  /// and counted in dropped() instead of growing memory without bound.
  /// The retained prefix keeps its exact timing. 0 = unbounded (default,
  /// so tests see every event).
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void record(Cycle cycle, std::string source, std::string event);
  void record_begin(Cycle cycle, std::string source, std::string event);
  void record_end(Cycle cycle, std::string source, std::string event);
  void record_counter(Cycle cycle, std::string source, std::string event,
                      double value);

  /// Flow arrows: a kFlowStart and the kFlowEnd carrying the same `id` are
  /// rendered as an arrow between their (cycle, source) anchor points —
  /// the latency auditor uses one per transaction to link request issue to
  /// response delivery across component tracks.
  void record_flow_start(Cycle cycle, std::string source, std::string event,
                         std::uint64_t id);
  void record_flow_end(Cycle cycle, std::string source, std::string event,
                       std::uint64_t id);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// First cycle at which (source, event) was recorded, or kNoCycle.
  [[nodiscard]] Cycle first(const std::string& source,
                            const std::string& event) const;

  /// Number of events matching (source, event).
  [[nodiscard]] std::size_t count(const std::string& source,
                                  const std::string& event) const;

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Writes a human-readable dump, one event per line.
  void dump(std::ostream& os) const;

 private:
  friend class TraceStagingBuffer;
  friend void merge_staged_traces(TraceStagingBuffer* const* buffers,
                                  std::size_t n);

  /// Routes to the thread's staging buffer when one is installed (parallel
  /// compute phase), otherwise commits directly.
  void push(TraceEvent e);

  /// Applies capacity accounting and appends. Only the recording thread
  /// (serial kernel) or the merge (parallel engine) reaches this.
  void commit_push(TraceEvent e);

  bool enabled_ = false;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace axihc
