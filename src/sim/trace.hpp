// Lightweight event trace. Components can record named events; tests use the
// trace to assert exact timing, and debugging dumps it as text. Disabled
// traces cost one branch per record.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axihc {

struct TraceEvent {
  Cycle cycle;
  std::string source;
  std::string event;
};

class EventTrace {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Cycle cycle, std::string source, std::string event);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// First cycle at which (source, event) was recorded, or kNoCycle.
  [[nodiscard]] Cycle first(const std::string& source,
                            const std::string& event) const;

  /// Number of events matching (source, event).
  [[nodiscard]] std::size_t count(const std::string& source,
                                  const std::string& event) const;

  void clear() { events_.clear(); }

  /// Writes a human-readable dump, one event per line.
  void dump(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace axihc
