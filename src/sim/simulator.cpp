#include "sim/simulator.hpp"

namespace axihc {

void Simulator::add(Component& component) { components_.push_back(&component); }

void Simulator::add(ChannelBase& channel) {
  channels_.push_back(&channel);
  channel.dirty_list_ = &dirty_;
  // A channel touched before registration (pushes staged during setup) must
  // still be committed at the end of the first cycle.
  if (channel.dirty_) dirty_.push_back(&channel);
}

void Simulator::reset() {
  for (auto* c : components_) c->reset();
  for (auto* ch : channels_) ch->reset();
  // Commit once so occupancy snapshots start from the empty state.
  for (auto* ch : channels_) ch->commit();
  dirty_.clear();
  last_step_quiet_ = true;
  now_ = 0;
}

void Simulator::step() {
  for (auto* c : components_) c->tick(now_);
  // Quiet cycles (no push/pop/flush anywhere) are the precondition for even
  // attempting a fast-forward next cycle: busy fabrics touch channels nearly
  // every cycle, so this keeps the next_activity scan off the hot path.
  last_step_quiet_ = dirty_.empty();
  for (auto* ch : dirty_) ch->commit();
  dirty_.clear();
  ++now_;
}

void Simulator::advance(Cycle deadline) {
  // Jump only from a provably frozen state: the last cycle moved no data
  // (so no commit is pending a snapshot change) and nothing was staged
  // outside a tick since then.
  if (fast_forward_ && last_step_quiet_ && dirty_.empty()) {
    Cycle target = deadline;
    for (const auto* c : components_) {
      const Cycle na = c->next_activity(now_);
      if (na <= now_) {
        target = now_;
        break;
      }
      if (na < target) target = na;
    }
    // Every skipped cycle [now_, target) would have been a full-system
    // no-op: no ticks run, so the certificates stay valid by induction.
    now_ = target;
    if (now_ >= deadline) return;
  }
  step();
}

void Simulator::run(Cycle cycles) {
  const Cycle deadline = now_ + cycles;
  while (now_ < deadline) advance(deadline);
}

}  // namespace axihc
