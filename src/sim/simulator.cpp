#include "sim/simulator.hpp"

namespace axihc {

void Simulator::add(Component& component) { components_.push_back(&component); }

void Simulator::add(ChannelBase& channel) { channels_.push_back(&channel); }

void Simulator::reset() {
  for (auto* c : components_) c->reset();
  for (auto* ch : channels_) ch->reset();
  // Commit once so occupancy snapshots start from the empty state.
  for (auto* ch : channels_) ch->commit();
  now_ = 0;
}

void Simulator::step() {
  for (auto* c : components_) c->tick(now_);
  for (auto* ch : channels_) ch->commit();
  ++now_;
}

void Simulator::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

}  // namespace axihc
