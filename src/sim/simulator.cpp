#include "sim/simulator.hpp"

#include "sim/phase_check.hpp"
#include "sim/worker_pool.hpp"

// Phase-race detector stamps (sim/phase_check.hpp): the engine marks which
// phase of the cycle it is in and which component is ticking, so channel
// accesses can be checked against the two-phase discipline. Compiled away
// entirely in builds without AXIHC_PHASE_CHECK.
#ifdef AXIHC_PHASE_CHECK
#define AXIHC_STAMP_PHASE(p) ::axihc::PhaseCheck::set_phase(::axihc::EnginePhase::p)
#define AXIHC_STAMP_CURRENT(c) ::axihc::PhaseCheck::set_current(c)
#else
#define AXIHC_STAMP_PHASE(p) ((void)0)
#define AXIHC_STAMP_CURRENT(c) ((void)0)
#endif

namespace axihc {

Simulator::Simulator()
    : policy_(resolve_backend(BackendKind::kAuto)),
      kernels_(&kernels_for(policy_.chosen)) {}

Simulator::~Simulator() = default;

void Simulator::add(Component& component) {
  components_.push_back(&component);
  partition_stale_ = true;
  pool_stale_ = true;
}

void Simulator::add(ChannelBase& channel) {
  channels_.push_back(&channel);
  // New channels start on the main lists; ensure_wiring() retargets them to
  // their island's lists before the next compute phase, and finalize_pool()
  // adopts their hot words into the pool.
  channel.dirty_list_ = &dirty_;
  channel.lane_list_ = &main_lanes_;
  channel.epoch_ = &epoch_;
  channel.enqueue_epoch_ = 0;
  partition_stale_ = true;
  pool_stale_ = true;
  // A channel touched before registration (pushes staged during setup) must
  // still be committed at the end of the first cycle. It has no lane yet,
  // so it goes on the pointer list (the virtual-commit path).
  if (channel.dirty_) {
    channel.enqueue_epoch_ = epoch_;
    dirty_.push_back(&channel);
  }
}

void Simulator::reset() {
  for (auto* c : components_) c->reset();
  for (auto* ch : channels_) ch->reset();
  // Commit once so occupancy snapshots start from the empty state.
  for (auto* ch : channels_) ch->commit();
  dirty_.clear();
  main_lanes_.clear();
  for (auto& isl : part_.islands) {
    isl.dirty.clear();
    isl.dirty_lanes.clear();
    isl.staging.clear();
  }
  // Invalidate stale enqueue stamps: the lists were cleared wholesale, so a
  // stamp equal to the old epoch must not suppress the next enqueue.
  ++epoch_;
  last_step_quiet_ = true;
  now_ = 0;
}

bool Simulator::no_pending_commits() const {
  if (!dirty_.empty() || !main_lanes_.empty()) return false;
  for (const auto& isl : part_.islands) {
    if (!isl.dirty.empty() || !isl.dirty_lanes.empty()) return false;
  }
  return true;
}

void Simulator::ensure_wiring() {
  const bool want = engine_active();
  if (want != island_wiring_ || (want && partition_stale_)) rewire(want);
  if (pool_stale_) finalize_pool();
}

void Simulator::rewire(bool want_islands) {
  // Channels already enqueued for commit must survive the retarget: collect
  // them, move the lists, re-enqueue. Their epoch stamps stay valid, so they
  // remain enqueued exactly once. Lane indices are stable across rewires
  // (lane == registration index), only the target list changes.
  std::vector<ChannelBase*> pending(dirty_.begin(), dirty_.end());
  dirty_.clear();
  std::vector<std::uint32_t> pending_lanes(main_lanes_.begin(),
                                           main_lanes_.end());
  main_lanes_.clear();
  for (auto& isl : part_.islands) {
    pending.insert(pending.end(), isl.dirty.begin(), isl.dirty.end());
    isl.dirty.clear();
    pending_lanes.insert(pending_lanes.end(), isl.dirty_lanes.begin(),
                         isl.dirty_lanes.end());
    isl.dirty_lanes.clear();
  }
  if (want_islands) {
    if (partition_stale_) {
      part_ = partition_islands(components_, channels_);
      partition_stale_ = false;
    }
    for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
      const std::size_t isl = part_.channel_island[ci];
      const bool main = isl == IslandPartition::kUnassigned;
      channels_[ci]->dirty_list_ = main ? &dirty_ : &part_.islands[isl].dirty;
      channels_[ci]->lane_list_ =
          main ? &main_lanes_ : &part_.islands[isl].dirty_lanes;
    }
  } else {
    for (auto* ch : channels_) {
      ch->dirty_list_ = &dirty_;
      ch->lane_list_ = &main_lanes_;
    }
  }
  island_wiring_ = want_islands;
  for (auto* ch : pending) ch->dirty_list_->push_back(ch);
  for (std::uint32_t lane : pending_lanes) {
    pool_.lane_channel(lane)->lane_list_->push_back(lane);
  }
}

void Simulator::finalize_pool() {
  pool_.resize_channels(channels_.size());
  // Growth may have moved the lane array: (re-)install every handle. Lane
  // index == registration index, so handles already installed just repoint.
  for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
    const auto lane = static_cast<std::uint32_t>(ci);
    const bool pooled = channels_[ci]->adopt_hot_lane(&pool_.hot(lane), lane);
    pool_.set_lane_channel(lane, pooled ? channels_[ci] : nullptr);
  }
  pool_.resize_certs(components_.size());
  for (std::size_t i = adopted_components_; i < components_.size(); ++i) {
    components_[i]->adopt_hot_state(pool_);
  }
  adopted_components_ = components_.size();
  pool_stale_ = false;
}

void Simulator::commit_pooled(std::vector<std::uint32_t>& lanes) {
  if (lanes.empty()) return;
#ifdef AXIHC_PHASE_CHECK
  // The kernels bypass virtual commit(): stamp each dirty lane's ledger the
  // way TimingChannel::commit would have.
  for (std::uint32_t lane : lanes) {
    if (ChannelBase* ch = pool_.lane_channel(lane)) ch->ledger_on_commit();
  }
#endif
  const std::size_t n = pool_.channel_lanes();
  // Dense sweeps are unconditional over every lane — clean lanes are no-ops
  // (staged == 0, snapshot == committed) — so the branch-free linear pass
  // wins as soon as a modest fraction of the pool is dirty.
  if (lanes.size() * 4 >= n) {
    kernels_->commit_dense(pool_.hot_data(), n);
  } else {
    kernels_->commit_sparse(pool_.hot_data(), lanes.data(), lanes.size());
  }
  lanes.clear();
}

void Simulator::step() {
  ensure_wiring();
  if (island_wiring_) {
    step_islands();
  } else {
    step_serial();
  }
}

void Simulator::step_serial() {
  AXIHC_STAMP_PHASE(kCompute);
  for (auto* c : components_) {
    AXIHC_STAMP_CURRENT(c);
    c->tick(now_);
  }
  AXIHC_STAMP_CURRENT(nullptr);
  // Quiet cycles (no push/pop/flush anywhere) are the precondition for even
  // attempting a fast-forward next cycle: busy fabrics touch channels nearly
  // every cycle, so this keeps the next_activity scan off the hot path.
  last_step_quiet_ = dirty_.empty() && main_lanes_.empty();
  AXIHC_STAMP_PHASE(kCommit);
  commit_pooled(main_lanes_);
  for (auto* ch : dirty_) ch->commit();
  dirty_.clear();
  AXIHC_STAMP_PHASE(kOutside);
  ++now_;
  ++epoch_;
}

void Simulator::tick_island(Island& island, bool stage_traces) {
  if (!stage_traces) {
    // No trace in the process is enabled: record sites are dead, so skip
    // the thread-local sink install and per-component sequence tagging.
    for (auto* c : island.components) {
      AXIHC_STAMP_CURRENT(c);
      c->tick(now_);
    }
    AXIHC_STAMP_CURRENT(nullptr);
    return;
  }
  TraceStagingBuffer::install(&island.staging);
  const std::size_t n = island.components.size();
  for (std::size_t k = 0; k < n; ++k) {
    TraceStagingBuffer::set_sequence(island.seq[k]);
    AXIHC_STAMP_CURRENT(island.components[k]);
    island.components[k]->tick(now_);
  }
  AXIHC_STAMP_CURRENT(nullptr);
  TraceStagingBuffer::install(nullptr);
}

void Simulator::step_islands() {
  auto& islands = part_.islands;
  const std::size_t ni = islands.size();

  // Compute phase: island-major, fixed island → participant assignment
  // (round-robin by island index) so the work placement — though not any
  // result — is a deterministic function of topology and thread count.
  unsigned nw = threads_;
  if (nw > ni) nw = static_cast<unsigned>(ni);
  if (WorkerPool::on_pool_thread()) nw = 1;  // nested inside a sweep job
  const bool stage_traces = EventTrace::any_enabled();
  AXIHC_STAMP_PHASE(kCompute);
  if (nw <= 1) {
    for (auto& isl : islands) tick_island(isl, stage_traces);
  } else {
    WorkerPool& pool = WorkerPool::shared();
    if (nw > pool.max_participants()) nw = pool.max_participants();
    pool.run_tasks(nw, [&](unsigned w) {
      for (std::size_t i = w; i < ni; i += nw) {
        tick_island(islands[i], stage_traces);
      }
    });
  }

  // Merge staged trace events back into their traces in registration order
  // (no-op when tracing is off or the cycle recorded nothing).
  if (stage_traces) {
    staging_scratch_.clear();
    for (auto& isl : islands) {
      if (!isl.staging.empty()) staging_scratch_.push_back(&isl.staging);
    }
    if (!staging_scratch_.empty()) {
      merge_staged_traces(staging_scratch_.data(), staging_scratch_.size());
    }
  }

  // Commit phase: serial, islands in order then the main list — a fixed
  // permutation of the channels, independent of thread count. (Channel
  // commits are mutually independent, so a dense kernel sweep triggered by
  // one island's list may commit another island's lanes early; the later
  // pass over those lanes is an idempotent no-op and the resulting state is
  // the same fixed point either way.)
  bool quiet = dirty_.empty() && main_lanes_.empty();
  for (auto& isl : islands) {
    quiet = quiet && isl.dirty.empty() && isl.dirty_lanes.empty();
  }
  last_step_quiet_ = quiet;
  AXIHC_STAMP_PHASE(kCommit);
  for (auto& isl : islands) {
    commit_pooled(isl.dirty_lanes);
    for (auto* ch : isl.dirty) ch->commit();
    isl.dirty.clear();
  }
  commit_pooled(main_lanes_);
  for (auto* ch : dirty_) ch->commit();
  dirty_.clear();
  AXIHC_STAMP_PHASE(kOutside);
  ++now_;
  ++epoch_;
}

void Simulator::advance(Cycle deadline) {
  ensure_wiring();
  // Jump only from a provably frozen state: the last cycle moved no data
  // (so no commit is pending a snapshot change) and nothing was staged
  // outside a tick since then.
  if (fast_forward_ && last_step_quiet_ && no_pending_commits()) {
    // Refresh the certificate array (early-outing on the first active
    // component), then min-reduce it with the backend kernel. Certificates
    // are indexed by registration order; the island walk refreshes its
    // slice through seq[]. next_activity() runs between cycles (no compute
    // phase in flight), so even cross-island channel reads in
    // implementations are race-free here.
    Cycle* certs = pool_.certs();
    bool active = false;
    if (island_wiring_) {
      for (const auto& isl : part_.islands) {
        const std::size_t m = isl.components.size();
        for (std::size_t k = 0; k < m; ++k) {
          const Cycle na = isl.components[k]->next_activity(now_);
          if (na <= now_) {
            active = true;
            break;
          }
          certs[isl.seq[k]] = na;
        }
        if (active) break;
      }
    } else {
      const std::size_t m = components_.size();
      for (std::size_t i = 0; i < m; ++i) {
        const Cycle na = components_[i]->next_activity(now_);
        if (na <= now_) {
          active = true;
          break;
        }
        certs[i] = na;
      }
    }
    if (!active) {
      Cycle target = deadline;
      const Cycle lower =
          kernels_->min_reduce(certs, components_.size());
      if (lower < target) target = lower;
      // Every skipped cycle [now_, target) would have been a full-system
      // no-op: no ticks run, so the certificates stay valid by induction.
      now_ = target;
      if (now_ >= deadline) return;
    }
  }
  if (island_wiring_) {
    step_islands();
  } else {
    step_serial();
  }
}

void Simulator::run(Cycle cycles) {
  const Cycle deadline = now_ + cycles;
  while (now_ < deadline) advance(deadline);
}

std::size_t Simulator::island_count() {
  if (engine_active()) {
    ensure_wiring();
    return part_.islands.size();
  }
  // Engine off: partition on demand without disturbing the serial wiring.
  return partition_islands(components_, channels_).islands.size();
}

std::uint64_t Simulator::state_digest() const {
  StateDigest d;
  d.mix(static_cast<std::uint64_t>(now_));
  d.mix(static_cast<std::uint64_t>(channels_.size()));
  for (const auto* ch : channels_) ch->append_digest(d);
  d.mix(static_cast<std::uint64_t>(components_.size()));
  for (const auto* c : components_) {
    d.mix(c->name());
    c->append_digest(d);
  }
  return d.value();
}

}  // namespace axihc
