// Shared-nothing job fan-out over the worker pool — the engine behind the
// bench sweeps (bench/bench_common.hpp) and the fault-campaign runner
// (src/campaign).
//
// Each job must own its entire simulation (Simulator, SocSystem, HAs,
// stores): simulations share no mutable state, which is what makes a sweep
// embarrassingly parallel AND deterministic per job. Results come back in
// job order, so the aggregate output of a parallel sweep is byte-identical
// to a serial run.
//
// Jobs and the island tick engine draw from the SAME pool
// (sim/worker_pool.hpp): a simulation running set_threads(n) inside a job
// executes its islands inline instead of oversubscribing, so total
// parallelism is capped by one pool either way.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "sim/worker_pool.hpp"

namespace axihc {

/// Worker threads for run_parallel_jobs: AXIHC_BENCH_THREADS overrides
/// (0 or unset = one per hardware thread).
inline unsigned parallel_job_threads() {
  if (const char* env = std::getenv("AXIHC_BENCH_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Process-wide peak resident set in KiB (0 where unsupported). ru_maxrss
/// is a high-water mark, so per-job attribution is approximate: the value
/// recorded after a job is the largest footprint ANY job had reached by
/// then — an upper bound on the job's own peak.
inline long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
    return static_cast<long>(ru.ru_maxrss);  // KiB on Linux
#endif
  }
#endif
  return 0;
}

/// Wall-time + memory rider for one scheduled job (sweep rows record it).
struct JobTiming {
  double wall_ms = 0.0;
  long rss_kb = 0;
};

/// Runs `job`, filling `timing` with its wall time and the process peak RSS
/// observed at completion.
template <typename Fn>
auto run_timed_job(Fn&& job, JobTiming& timing) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = job();
  const auto t1 = std::chrono::steady_clock::now();
  timing.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  timing.rss_kb = peak_rss_kb();
  return result;
}

/// Warns (once per process) when AXIHC_BENCH_THREADS asks for more workers
/// than the host has hardware threads: the jobs still run, but
/// oversubscribed timings are not scaling measurements. Lives in the shared
/// scheduler so every fan-out client (benches, campaigns, sweeps) gets it.
inline void warn_once_if_oversubscribed() {
  static const bool warned = [] {
    const unsigned requested = parallel_job_threads();
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && requested > hw) {
      std::cerr << "axihc: AXIHC_BENCH_THREADS=" << requested
                << " exceeds this host's " << hw
                << " hardware thread(s); timings will be oversubscribed\n";
    }
    return true;
  }();
  (void)warned;
}

/// Runs independent jobs across the shared worker pool and returns their
/// results in job order.
template <typename Result>
std::vector<Result> run_parallel_jobs(
    std::vector<std::function<Result()>> jobs) {
  warn_once_if_oversubscribed();
  std::vector<Result> results(jobs.size());
  const unsigned threads =
      std::min<unsigned>(parallel_job_threads(),
                         static_cast<unsigned>(jobs.size()));
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = jobs[i]();
    return results;
  }
  std::atomic<std::size_t> next{0};
  WorkerPool::shared().run_tasks(threads, [&](unsigned) {
    for (std::size_t i = next.fetch_add(1); i < jobs.size();
         i = next.fetch_add(1)) {
      results[i] = jobs[i]();
    }
  });
  return results;
}

}  // namespace axihc
