// Shared-nothing job fan-out over the worker pool — the engine behind the
// bench sweeps (bench/bench_common.hpp) and the fault-campaign runner
// (src/campaign).
//
// Each job must own its entire simulation (Simulator, SocSystem, HAs,
// stores): simulations share no mutable state, which is what makes a sweep
// embarrassingly parallel AND deterministic per job. Results come back in
// job order, so the aggregate output of a parallel sweep is byte-identical
// to a serial run.
//
// Jobs and the island tick engine draw from the SAME pool
// (sim/worker_pool.hpp): a simulation running set_threads(n) inside a job
// executes its islands inline instead of oversubscribing, so total
// parallelism is capped by one pool either way.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "sim/worker_pool.hpp"

namespace axihc {

/// Worker threads for run_parallel_jobs: AXIHC_BENCH_THREADS overrides
/// (0 or unset = one per hardware thread).
inline unsigned parallel_job_threads() {
  if (const char* env = std::getenv("AXIHC_BENCH_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Runs independent jobs across the shared worker pool and returns their
/// results in job order.
template <typename Result>
std::vector<Result> run_parallel_jobs(
    std::vector<std::function<Result()>> jobs) {
  std::vector<Result> results(jobs.size());
  const unsigned threads =
      std::min<unsigned>(parallel_job_threads(),
                         static_cast<unsigned>(jobs.size()));
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = jobs[i]();
    return results;
  }
  std::atomic<std::size_t> next{0};
  WorkerPool::shared().run_tasks(threads, [&](unsigned) {
    for (std::size_t i = next.fetch_add(1); i < jobs.size();
         i = next.fetch_add(1)) {
      results[i] = jobs[i]();
    }
  });
  return results;
}

}  // namespace axihc
