#include "sim/island.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "sim/channel.hpp"
#include "sim/component.hpp"

namespace axihc {

namespace {

std::size_t find_root(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

void unite(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  a = find_root(parent, a);
  b = find_root(parent, b);
  if (a != b) parent[std::max(a, b)] = std::min(a, b);
}

}  // namespace

Cycle Island::next_activity(Cycle now, Cycle bound) const {
  Cycle target = bound;
  for (const Component* c : components) {
    const Cycle na = c->next_activity(now);
    if (na <= now) return now;
    if (na < target) target = na;
  }
  return target;
}

IslandPartition partition_islands(const std::vector<Component*>& components,
                                  const std::vector<ChannelBase*>& channels) {
  IslandPartition part;
  part.channel_island.assign(channels.size(), IslandPartition::kUnassigned);
  const std::size_t n = components.size();

  for (const Component* c : components) {
    if (c->tick_scope() == TickScope::kSerial) {
      part.collapsed = true;
      break;
    }
  }
  if (part.collapsed) {
    // Safe fallback: everything in one island, registration order preserved,
    // every channel committed from that island's list.
    Island all;
    all.components = components;
    all.seq.resize(n);
    std::iota(all.seq.begin(), all.seq.end(), 0u);
    part.islands.push_back(std::move(all));
    for (auto& ci : part.channel_island) ci = 0;
    return part;
  }

  // Union-find over component nodes: registered components get their
  // registration index; endpoint components that were never registered with
  // this Simulator (e.g. shared across simulators in tests) become glue
  // nodes so they still merge the channels they touch.
  std::unordered_map<const Component*, std::size_t> node_of;
  node_of.reserve(n);
  for (std::size_t i = 0; i < n; ++i) node_of.emplace(components[i], i);
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto node = [&](const Component* c) {
    auto [it, inserted] = node_of.try_emplace(c, parent.size());
    if (inserted) parent.push_back(it->second);
    return it->second;
  };
  for (const ChannelBase* ch : channels) {
    const auto& eps = ch->endpoints();
    if (eps.empty()) continue;
    const std::size_t first = node(eps.front());
    for (std::size_t k = 1; k < eps.size(); ++k) {
      unite(parent, node(eps[k]), first);
    }
  }

  // Islands in order of their smallest registered member; members in
  // ascending registration index — together this makes the island-major
  // component walk a stable permutation of registration order.
  std::unordered_map<std::size_t, std::size_t> island_of_root;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find_root(parent, i);
    auto [it, inserted] = island_of_root.try_emplace(root, part.islands.size());
    if (inserted) part.islands.emplace_back();
    Island& isl = part.islands[it->second];
    isl.components.push_back(components[i]);
    isl.seq.push_back(static_cast<std::uint32_t>(i));
  }

  for (std::size_t ci = 0; ci < channels.size(); ++ci) {
    const auto& eps = channels[ci]->endpoints();
    if (eps.empty()) continue;
    const std::size_t root = find_root(parent, node(eps.front()));
    const auto it = island_of_root.find(root);
    if (it != island_of_root.end()) part.channel_island[ci] = it->second;
  }
  return part;
}

}  // namespace axihc
