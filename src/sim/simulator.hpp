// Cycle-stepped simulator: ticks every component, then commits every dirty
// channel. A fast-forward pass skips provably quiescent stretches — see
// docs/ARCHITECTURE.md ("The kernel fast path") for the safety argument.
//
// Two execution engines share the two-phase semantics:
//  * The serial kernel (default, threads <= 1): one flat component walk per
//    cycle, exactly the pre-island code path. A one-worker engine round
//    would be the same walk plus island bookkeeping, so threads == 1 runs
//    the serial kernel outright — zero overhead by construction.
//  * The island engine (set_threads >= 2): the component graph is
//    partitioned into islands (src/sim/island.hpp) at elaboration time; each
//    cycle's compute phase is dispatched across the shared worker pool with
//    a fixed island → worker assignment, then the commit phase runs serially
//    on the dispatching thread. Every observable is bit-identical to the
//    serial kernel at any thread count (see ARCHITECTURE.md, "Island-
//    partitioned parallel tick engine").
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/backend.hpp"
#include "sim/channel.hpp"
#include "sim/component.hpp"
#include "sim/island.hpp"
#include "sim/soa_pool.hpp"

namespace axihc {

class Simulator {
 public:
  Simulator();

  // Registration is non-owning in both directions and either side may be
  // destroyed first, so the destructor must not touch registered channels
  // or components (they are not told; the pre-existing contract is that a
  // channel is not used after its Simulator is gone, and vice versa).
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a component (non-owning; caller keeps it alive).
  void add(Component& component);

  /// Registers a channel for end-of-cycle commit (non-owning).
  void add(ChannelBase& channel);

  /// Resets all components and channels and rewinds time to zero.
  void reset();

  /// Advances the simulation by exactly one clock cycle (never skips).
  void step();

  /// Advances by `cycles` clock cycles (may fast-forward internally).
  void run(Cycle cycles);

  /// Steps until `done()` returns true or `max_cycles` elapse.
  /// Returns true if the predicate fired (i.e. the run did not time out).
  ///
  /// Fast-forward note: predicates read simulation state, and state is by
  /// construction frozen across a skipped stretch, so `done()` cannot change
  /// inside one — checking it once per advance is exact.
  template <typename Pred>
  bool run_until(Pred done, Cycle max_cycles) {
    const Cycle deadline = now_ + max_cycles;
    while (now_ < deadline) {
      if (done()) return true;
      advance(deadline);
    }
    return done();
  }

  /// Enables/disables the quiescence fast-forward (on by default). The
  /// forced naive mode exists for determinism regression tests and for
  /// `--no-fast-forward` debugging; results are bit-identical either way.
  void set_fast_forward(bool on) { fast_forward_ = on; }
  [[nodiscard]] bool fast_forward() const { return fast_forward_; }

  /// Selects the execution engine. n >= 2 = island engine with up to n
  /// threads per cycle (clipped to the island count and the shared pool
  /// size). 0 (default) and 1 run the serial kernel: a single-worker engine
  /// round is the identical component walk plus island bookkeeping, so one
  /// thread gets the serial kernel outright. Can be changed between steps;
  /// results are bit-identical for every setting.
  void set_threads(unsigned threads) { threads_ = threads; }
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Master switch for the island engine (`--no-parallel-tick`): when off,
  /// the serial kernel runs regardless of set_threads().
  void set_parallel_tick(bool on) { parallel_tick_ = on; }
  [[nodiscard]] bool parallel_tick() const { return parallel_tick_; }

  /// Selects the sweep-kernel backend (`--backend`). The request is
  /// resolved against the host CPU and the AXIHC_FORCE_BACKEND override
  /// (sim/backend.hpp); every Simulator starts on resolve(kAuto). Results
  /// are bit-identical for every backend — only wall time changes.
  void set_backend(BackendKind requested) {
    policy_ = resolve_backend(requested);
    kernels_ = &kernels_for(policy_.chosen);
  }
  /// How the active backend was chosen (policy report line).
  [[nodiscard]] const BackendPolicy& backend_policy() const {
    return policy_;
  }

  /// The hot-state pool (axihc-lint and the phase checker cross-check its
  /// slot declarations; tests inspect lane adoption).
  [[nodiscard]] HotStatePool& hot_pool() { return pool_; }
  [[nodiscard]] const HotStatePool& hot_pool() const { return pool_; }

  /// Number of islands the registered topology partitions into (1 when a
  /// serial-scope component collapses the partition). Test/debug hook: lets
  /// bit-identity tests assert that a scenario really is partitioned rather
  /// than silently collapsed.
  [[nodiscard]] std::size_t island_count();

  /// FNV-1a digest of the committed simulation state: channel contents and
  /// traffic counters plus each component's architecturally visible state.
  /// Equal digests across engines/thread counts are the bit-identity
  /// criterion used by tests and `axihc --digest`.
  [[nodiscard]] std::uint64_t state_digest() const;

  [[nodiscard]] Cycle now() const { return now_; }

  /// Registered graph, in registration order (read-only). The design-rule
  /// checker (src/lint) walks these to cross-check endpoint declarations,
  /// island scopes and connectivity after elaboration.
  [[nodiscard]] const std::vector<Component*>& components() const {
    return components_;
  }
  [[nodiscard]] const std::vector<ChannelBase*>& channels() const {
    return channels_;
  }

 private:
  /// One step toward `deadline`: first jumps `now_` across a quiescent
  /// stretch when every component certifies one, then steps one cycle
  /// (unless the jump already reached the deadline).
  void advance(Cycle deadline);

  [[nodiscard]] bool engine_active() const {
    return parallel_tick_ && threads_ >= 2;
  }
  /// True when no channel anywhere is awaiting commit (fast-forward gate).
  [[nodiscard]] bool no_pending_commits() const;

  /// Repartitions and/or retargets channel dirty lists when the topology or
  /// the engine selection changed. Cheap flag check when nothing did.
  void ensure_wiring();
  void rewire(bool want_islands);

  /// (Re-)installs pool handles: sizes the lane/cert arrays to the
  /// registered graph, adopts every channel's hot words (lane == channel
  /// registration index) and runs adopt_hot_state for components not yet
  /// asked. Re-run after any registration, since lane-array growth moves
  /// the handles.
  void finalize_pool();

  /// Commits the pooled lanes queued on `lanes` through the backend
  /// kernels: a dense whole-pool sweep when the dirty density is high
  /// (clean lanes are no-ops by the staged==0 / snapshot==committed
  /// invariant), a sparse indexed sweep otherwise. Clears `lanes`.
  void commit_pooled(std::vector<std::uint32_t>& lanes);

  void step_serial();
  void step_islands();
  void tick_island(Island& island, bool stage_traces);

  std::vector<Component*> components_;
  std::vector<ChannelBase*> channels_;   // all channels, for reset()
  std::vector<ChannelBase*> dirty_;      // main commit list (serial kernel,
                                         // plus endpoint-less channels)
  std::vector<std::uint32_t> main_lanes_;  // pooled counterpart of dirty_
  HotStatePool pool_;
  BackendPolicy policy_;
  const BackendKernels* kernels_ = nullptr;  // policy_.chosen's table
  IslandPartition part_;                 // valid when !partition_stale_
  std::vector<TraceStagingBuffer*> staging_scratch_;
  Cycle now_ = 0;
  // Cycle epoch for the duplicate-enqueue guard (ChannelBase::mark_dirty).
  // Starts at 1 so a fresh channel's stamp of 0 never matches; bumped every
  // step and on reset.
  std::uint64_t epoch_ = 1;
  unsigned threads_ = 0;
  bool parallel_tick_ = true;
  bool fast_forward_ = true;
  bool last_step_quiet_ = true;  // no channel was touched last cycle
  bool partition_stale_ = true;  // registrations since the last partition
  bool island_wiring_ = false;   // channels currently target island lists
  bool pool_stale_ = true;       // registrations since the last finalize
  std::size_t adopted_components_ = 0;  // adopt_hot_state high-water mark
};

}  // namespace axihc
