// Cycle-stepped simulator: ticks every component, then commits every channel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/channel.hpp"
#include "sim/component.hpp"

namespace axihc {

class Simulator {
 public:
  Simulator() = default;

  /// Registers a component (non-owning; caller keeps it alive).
  void add(Component& component);

  /// Registers a channel for end-of-cycle commit (non-owning).
  void add(ChannelBase& channel);

  /// Resets all components and channels and rewinds time to zero.
  void reset();

  /// Advances the simulation by one clock cycle.
  void step();

  /// Advances by `cycles` clock cycles.
  void run(Cycle cycles);

  /// Steps until `done()` returns true or `max_cycles` elapse.
  /// Returns true if the predicate fired (i.e. the run did not time out).
  template <typename Pred>
  bool run_until(Pred done, Cycle max_cycles) {
    for (Cycle i = 0; i < max_cycles; ++i) {
      if (done()) return true;
      step();
    }
    return done();
  }

  [[nodiscard]] Cycle now() const { return now_; }

 private:
  std::vector<Component*> components_;
  std::vector<ChannelBase*> channels_;
  Cycle now_ = 0;
};

}  // namespace axihc
