// Cycle-stepped simulator: ticks every component, then commits every dirty
// channel. A fast-forward pass skips provably quiescent stretches — see
// docs/ARCHITECTURE.md ("The kernel fast path") for the safety argument.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/channel.hpp"
#include "sim/component.hpp"

namespace axihc {

class Simulator {
 public:
  Simulator() = default;

  /// Registers a component (non-owning; caller keeps it alive).
  void add(Component& component);

  /// Registers a channel for end-of-cycle commit (non-owning).
  void add(ChannelBase& channel);

  /// Resets all components and channels and rewinds time to zero.
  void reset();

  /// Advances the simulation by exactly one clock cycle (never skips).
  void step();

  /// Advances by `cycles` clock cycles (may fast-forward internally).
  void run(Cycle cycles);

  /// Steps until `done()` returns true or `max_cycles` elapse.
  /// Returns true if the predicate fired (i.e. the run did not time out).
  ///
  /// Fast-forward note: predicates read simulation state, and state is by
  /// construction frozen across a skipped stretch, so `done()` cannot change
  /// inside one — checking it once per advance is exact.
  template <typename Pred>
  bool run_until(Pred done, Cycle max_cycles) {
    const Cycle deadline = now_ + max_cycles;
    while (now_ < deadline) {
      if (done()) return true;
      advance(deadline);
    }
    return done();
  }

  /// Enables/disables the quiescence fast-forward (on by default). The
  /// forced naive mode exists for determinism regression tests and for
  /// `--no-fast-forward` debugging; results are bit-identical either way.
  void set_fast_forward(bool on) { fast_forward_ = on; }
  [[nodiscard]] bool fast_forward() const { return fast_forward_; }

  [[nodiscard]] Cycle now() const { return now_; }

 private:
  /// One step toward `deadline`: first jumps `now_` across a quiescent
  /// stretch when every component certifies one, then steps one cycle
  /// (unless the jump already reached the deadline).
  void advance(Cycle deadline);

  std::vector<Component*> components_;
  std::vector<ChannelBase*> channels_;   // all channels, for reset()
  std::vector<ChannelBase*> dirty_;      // channels to commit this cycle
  Cycle now_ = 0;
  bool fast_forward_ = true;
  bool last_step_quiet_ = true;  // no channel was touched last cycle
};

}  // namespace axihc
