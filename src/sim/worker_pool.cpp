#include "sim/worker_pool.hpp"

#include <algorithm>

namespace axihc {

namespace {
thread_local bool tls_on_pool_thread = false;
}  // namespace

WorkerPool& WorkerPool::shared() {
  // Workers beyond the core count only add wake latency; 3 workers (4-way
  // rounds) is the largest count the tests and benches dispatch, so keep a
  // floor of 3 even on small hosts — sleeping workers cost nothing.
  static WorkerPool pool(
      std::max(3u, std::max(1u, std::thread::hardware_concurrency()) - 1u));
  return pool;
}

bool WorkerPool::on_pool_thread() { return tls_on_pool_thread; }

WorkerPool::WorkerPool(unsigned worker_threads) : slots_(worker_threads) {
  threads_.reserve(worker_threads);
  for (unsigned w = 0; w < worker_threads; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    wake_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void WorkerPool::run_tasks_impl(unsigned participants, Call call, void* ctx) {
  unsigned n = std::min(participants, max_participants());
  if (n == 0) n = 1;
  if (n == 1 || tls_on_pool_thread || !run_mutex_.try_lock()) {
    // Nested or contended dispatch: run everything inline, serially. This is
    // the "one shared pool" cap — a simulation inside a sweep job does not
    // multiply the sweep's threads.
    for (unsigned i = 0; i < n; ++i) call(ctx, i);
    return;
  }
  std::lock_guard<std::mutex> run_guard(run_mutex_, std::adopt_lock);

  job_call_ = call;
  job_ctx_ = ctx;
  done_.store(0, std::memory_order_relaxed);
  const std::uint64_t gen = ++generation_;
  // Publish: the release store to each mailbox makes the job fields (and the
  // done_ reset) visible to exactly the workers signalled for this round.
  for (unsigned w = 0; w + 1 < n; ++w) {
    slots_[w].work_gen.store(gen, std::memory_order_seq_cst);
  }
  // Wake sleepers. The seq_cst mailbox store above and the worker's seq_cst
  // sleeping store below form the classic store/load handshake: either we
  // observe sleeping==true and notify, or the worker re-checks its mailbox
  // after registering and sees the new generation without a notify.
  bool any_sleeping = false;
  for (unsigned w = 0; w + 1 < n; ++w) {
    if (slots_[w].sleeping.load(std::memory_order_seq_cst)) {
      any_sleeping = true;
      break;
    }
  }
  if (any_sleeping) {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    wake_cv_.notify_all();
  }

  // The caller is participant 0. Mark it as a pool thread so nested
  // dispatches from inside the job degrade to inline execution.
  tls_on_pool_thread = true;
  call(ctx, 0);
  tls_on_pool_thread = false;

  const unsigned expected = n - 1;
  for (unsigned spins = 0;
       done_.load(std::memory_order_acquire) != expected; ++spins) {
    if (spins > 128) std::this_thread::yield();
  }
}

void WorkerPool::worker_main(unsigned worker_index) {
  WorkerSlot& slot = slots_[worker_index];
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for our mailbox to move: spin briefly (a tick round is short),
    // then yield (oversubscribed host), then sleep (idle pool).
    unsigned spins = 0;
    while (slot.work_gen.load(std::memory_order_acquire) == seen) {
      if (stop_.load(std::memory_order_acquire)) return;
      ++spins;
      if (spins < 256) {
        // tight spin
      } else if (spins < 4096) {
        std::this_thread::yield();
      } else {
        slot.sleeping.store(true, std::memory_order_seq_cst);
        {
          std::unique_lock<std::mutex> lk(wake_mutex_);
          wake_cv_.wait(lk, [&] {
            return stop_.load(std::memory_order_acquire) ||
                   slot.work_gen.load(std::memory_order_acquire) != seen;
          });
        }
        slot.sleeping.store(false, std::memory_order_relaxed);
        spins = 0;
      }
    }
    seen = slot.work_gen.load(std::memory_order_acquire);
    // Our mailbox was bumped, so this round includes us: run our fixed
    // index. The dispatcher cannot start a new round (or rewrite the job
    // fields) until our done_ increment below is observed.
    tls_on_pool_thread = true;
    job_call_(job_ctx_, worker_index + 1);
    tls_on_pool_thread = false;
    done_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace axihc
