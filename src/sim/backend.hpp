// Runtime-dispatched compute backends for the kernel's linear sweeps.
//
// The two loops worth vectorizing (see soa_pool.hpp for the data layout):
//  * the commit sweep over pooled channel hot lanes — dense (whole pool) or
//    sparse (dirty lanes only), picked per cycle by dirty density;
//  * the fast-forward min-reduction over the next_activity certificate
//    array.
// Each ships as a table of function pointers (BackendKernels) in scalar,
// SSE2 and AVX2 flavours. All flavours are bit-exact by construction: the
// dense sweep relies only on the clean-lane invariant (staged == 0 and
// snapshot == committed), and the reduction is an exact unsigned min — so
// backend choice can never change a digest or a trace, only wall time.
//
// Selection follows the streaming-kernel policy idiom: a BackendPolicy
// records what was requested (CLI/--backend or API), what the CPU supports
// (runtime CPUID), whether AXIHC_FORCE_BACKEND overrode the request, and
// the chosen backend with a human-readable reason — one report() line pins
// the dispatch path in logs and bug reports. `auto_tune_backend()` is an
// optional micro-probe that times each supported flavour on synthetic pools
// and returns the fastest for this host.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace axihc {

struct ChannelHot;

enum class BackendKind : std::uint8_t { kScalar, kSse2, kAvx2, kAuto };

[[nodiscard]] const char* to_string(BackendKind kind);

/// Parses "scalar" / "sse2" / "avx2" / "auto". Returns false (and leaves
/// `out` untouched) on anything else.
[[nodiscard]] bool parse_backend(std::string_view text, BackendKind& out);

/// Runtime CPU capabilities relevant to the shipped kernels. All false on
/// non-x86 hosts (only the scalar backend is selectable there).
struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  /// Space-separated feature list for the policy report, e.g. "sse2 avx2";
  /// "none" when no SIMD kernel is usable.
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] CpuFeatures detect_cpu_features();

/// The vectorizable kernels of one backend. All are exact (no reordering of
/// observable effects): every backend produces bit-identical pool state.
struct BackendKernels {
  BackendKind kind = BackendKind::kScalar;

  /// Commits every lane of `hot[0, n)`:
  ///   committed += staged; staged = 0; snapshot = committed.
  /// Safe to run over clean lanes: a lane not touched since its last commit
  /// has staged == 0 and snapshot == committed, so the update is a no-op.
  void (*commit_dense)(ChannelHot* hot, std::size_t n) = nullptr;

  /// Same update, only for the `n` lane indices in `lanes` (may repeat; the
  /// update is idempotent within a commit phase).
  void (*commit_sparse)(ChannelHot* hot, const std::uint32_t* lanes,
                        std::size_t n) = nullptr;

  /// Exact unsigned min over `v[0, n)`; identity (n == 0) is UINT64_MAX,
  /// which is kNoCycle — "no certificate" and "no component" coincide.
  std::uint64_t (*min_reduce)(const std::uint64_t* v, std::size_t n) = nullptr;
};

/// Kernel table for a concrete backend (not kAuto). Callers are expected to
/// go through resolve_backend() so unsupported ISAs are never dispatched;
/// passing an unsupported concrete kind returns the scalar table.
[[nodiscard]] const BackendKernels& kernels_for(BackendKind kind);

/// How a Simulator ended up on its backend. One line via report().
struct BackendPolicy {
  BackendKind requested = BackendKind::kAuto;
  BackendKind chosen = BackendKind::kScalar;
  CpuFeatures cpu;
  bool forced_by_env = false;  // AXIHC_FORCE_BACKEND took precedence
  std::string reason;          // human-readable selection rationale

  /// e.g. "backend policy: chosen=avx2 requested=auto cpu=[sse2 avx2]
  ///       reason=auto: widest supported ISA"
  [[nodiscard]] std::string report() const;
};

/// Resolves `requested` against the host CPU and the AXIHC_FORCE_BACKEND
/// environment override (highest precedence; an unparseable or unsupported
/// override is recorded in `reason` and ignored). Unsupported concrete
/// requests fall back to scalar rather than fail: the backends are
/// bit-identical, so degrading is always safe.
[[nodiscard]] BackendPolicy resolve_backend(BackendKind requested);

/// Micro-probe: times each supported backend's dense-commit and min-reduce
/// kernels on synthetic pools and returns the fastest. `note` (optional)
/// receives a one-line timing summary.
[[nodiscard]] BackendKind auto_tune_backend(std::string* note = nullptr);

// SIMD kernel tables, defined in backend_simd.cpp via GCC/Clang target
// attributes; null on hosts/compilers without x86 SIMD support. Internal —
// use kernels_for().
namespace backend_detail {
[[nodiscard]] const BackendKernels* sse2_kernels();
[[nodiscard]] const BackendKernels* avx2_kernels();
}  // namespace backend_detail

}  // namespace axihc
