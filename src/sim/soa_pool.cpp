#include "sim/soa_pool.hpp"

#include <utility>

#include "sim/phase_check.hpp"

namespace axihc {

HotStatePool::Slot32 HotStatePool::alloc_u32(const Component* owner,
                                             std::size_t count,
                                             std::string what) {
  // u32 slots live in u64 blocks (rounded up) so both widths share the
  // allocation bookkeeping; alignment is trivially satisfied.
  blocks_.push_back(std::make_unique<std::uint64_t[]>((count + 1) / 2 + 1));
  SlotInfo info;
  info.owner = owner;
  info.what = std::move(what);
  info.words = count;
  slots_.push_back(std::move(info));
  Slot32 s;
  s.data = reinterpret_cast<std::uint32_t*>(blocks_.back().get());
  s.slot = static_cast<std::uint32_t>(slots_.size() - 1);
  return s;
}

HotStatePool::Slot64 HotStatePool::alloc_u64(const Component* owner,
                                             std::size_t count,
                                             std::string what) {
  blocks_.push_back(std::make_unique<std::uint64_t[]>(count > 0 ? count : 1));
  SlotInfo info;
  info.owner = owner;
  info.what = std::move(what);
  info.words = count;
  slots_.push_back(std::move(info));
  Slot64 s;
  s.data = blocks_.back().get();
  s.slot = static_cast<std::uint32_t>(slots_.size() - 1);
  return s;
}

#ifdef AXIHC_PHASE_CHECK

void HotStatePool::note_slot_write(std::uint32_t slot) const {
  if (!PhaseCheck::armed()) return;
  const SlotInfo& info = slots_[slot];
  const Component* c = PhaseCheck::current();
  if (c != nullptr) {
    bool seen = false;
    for (const Component* s : info.accessors) {
      if (s == c) {
        seen = true;
        break;
      }
    }
    if (!seen) info.accessors.push_back(c);
  }
  if (PhaseCheck::phase() == EnginePhase::kCommit) {
    PhaseCheck::record("pool:" + info.what,
                       "pool-slot write during the engine commit phase", 0);
  }
}

#endif  // AXIHC_PHASE_CHECK

}  // namespace axihc
