// Point-to-point timing channel — the wire+register abstraction of the
// simulation kernel.
//
// Semantics (two-phase, deterministic):
//  * During a cycle, `push` stages an element; staged elements become visible
//    to the consumer only after `commit()` runs at the end of the cycle.
//    Hence every hop through a channel costs exactly one clock cycle, which
//    matches the paper's per-stage latency accounting ("one clock cycle is
//    spent on the slave interface of the eFIFO, one on the TS, ...").
//  * `can_push` is evaluated against the occupancy snapshotted at the start
//    of the cycle, so the answer does not depend on whether the consumer
//    already popped this cycle. Together with staged pushes this makes the
//    simulation independent of component tick order: runs are
//    bit-deterministic by construction and there are no combinational loops.
//  * `pop` consumes elements committed in earlier cycles.
//
// Storage is a single fixed-capacity ring allocated once at construction:
// committed and staged elements share the ring (committed at the head,
// staged behind them), so push/pop/commit never touch the heap. One ring of
// `capacity` slots always suffices because committed + staged <= capacity is
// an invariant: can_push requires snapshot + staged < capacity, committed
// can only shrink within a cycle, and commit sets the new committed count to
// committed + staged <= snapshot + (capacity - snapshot) = capacity.
//
// Channels also self-report to their Simulator's dirty list: any push, pop
// or flush marks the channel dirty, and only dirty channels are committed at
// the end of a cycle (quiet channels need neither data movement nor a new
// snapshot). Standalone channels (no Simulator) just keep the flag locally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/digest.hpp"
#include "sim/soa_pool.hpp"

namespace axihc {

class Component;

/// Type-erased base so the Simulator can commit/reset heterogeneous channels.
class ChannelBase {
 public:
  explicit ChannelBase(std::string name) : name_(std::move(name)) {}
  virtual ~ChannelBase() = default;
  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  /// End-of-cycle: make staged pushes visible and re-snapshot occupancy.
  virtual void commit() = 0;

  /// Hardware reset: drop all contents.
  virtual void reset() = 0;

  /// Pool adoption (Simulator elaboration): moves this channel's hot words
  /// into pool lane `index` at address `lane` and repoints the handle.
  /// Returns false (default) for channel types without pooled hot state —
  /// the Simulator then keeps committing them through virtual commit() and
  /// leaves the (all-zero, hence sweep-neutral) lane unused. Called again
  /// after any pool growth; re-adoption of the same lane is a no-op.
  virtual bool adopt_hot_lane(ChannelHot* lane, std::uint32_t index) {
    (void)lane;
    (void)index;
    return false;
  }

  /// Detaches from the pool (Simulator teardown): copies the hot words back
  /// into channel-local storage so the channel outliving its Simulator
  /// remains fully usable.
  virtual void release_hot_lane() {}

  /// Pool lane index, or kNoLane when not pooled.
  [[nodiscard]] std::uint32_t pool_lane() const { return lane_; }

  /// Folds the committed + staged contents and traffic counters into `d`
  /// (Simulator::state_digest). Default: no content to report.
  virtual void append_digest(StateDigest& d) const { (void)d; }

  /// Declares `component` as an endpoint (producer or consumer) of this
  /// channel. Called from component constructors; the island engine builds
  /// connected components of the (component, channel) graph from these
  /// declarations at elaboration time. Duplicate declarations are fine.
  void add_endpoint(const Component& component) {
    endpoints_.push_back(&component);
  }

  [[nodiscard]] const std::vector<const Component*>& endpoints() const {
    return endpoints_;
  }

  /// Access ledger (axihc-lint): distinct components observed touching this
  /// channel while the phase checker was armed. Always empty in builds
  /// without AXIHC_PHASE_CHECK — the design-rule checker cross-checks it
  /// against endpoints() to find undeclared accesses.
#ifdef AXIHC_PHASE_CHECK
  [[nodiscard]] const std::vector<const Component*>& observed_accessors()
      const {
    return ledger_accessors_;
  }
  void clear_observed_accessors() { ledger_accessors_.clear(); }
#else
  [[nodiscard]] const std::vector<const Component*>& observed_accessors()
      const {
    static const std::vector<const Component*> kEmpty;
    return kEmpty;
  }
  void clear_observed_accessors() {}
#endif

  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  /// Enqueues this channel on its commit list (once per cycle). Called on any
  /// state change that a commit must observe: push (staged data), pop and
  /// flush (the next snapshot changes).
  ///
  /// Registered channels dedup purely on the epoch stamp: a mid-cycle
  /// manual commit() must not cause a second enqueue (the commit phase
  /// would commit and re-snapshot twice), and the stamp — unlike the dirty_
  /// flag — survives clear_dirty(), so the channel stays enqueued exactly
  /// once per epoch. Pooled channels enqueue their lane index (committed by
  /// the backend kernels); only unpooled ones enqueue a pointer for the
  /// virtual-commit fallback. Standalone channels just set the local flag
  /// (which Simulator::add also checks, so pre-registration pushes commit
  /// at the end of the first cycle).
  void mark_dirty() {
    if (epoch_ != nullptr) {
      if (enqueue_epoch_ == *epoch_) return;  // already enqueued this cycle
      enqueue_epoch_ = *epoch_;
      dirty_ = true;
      if (lane_ != kNoLane) {
        lane_list_->push_back(lane_);
      } else {
        dirty_list_->push_back(this);
      }
      return;
    }
    dirty_ = true;
  }

  /// commit() implementations call this so a later change re-enqueues.
  void clear_dirty() { dirty_ = false; }

  // Phase-checker hooks (see sim/phase_check.hpp). Instrumented builds
  // outline them into phase_check.cpp; default builds compile them away, so
  // the hot channel methods carry zero overhead. Const so the read-side
  // hooks can be called from const accessors (the ledger state is mutable).
#ifdef AXIHC_PHASE_CHECK
  void ledger_on_read() const;   // pop/front: consumes committed state
  void ledger_on_peek() const;   // occupancy reads (can_push/can_pop/...)
  void ledger_on_write() const;  // push
  void ledger_on_commit() const;
  void ledger_on_flush() const;  // clear_contents

 private:
  void ledger_note_accessor() const;
#else
  void ledger_on_read() const {}
  void ledger_on_peek() const {}
  void ledger_on_write() const {}
  void ledger_on_commit() const {}
  void ledger_on_flush() const {}

 private:
#endif
  friend class Simulator;

  std::string name_;
  std::vector<const Component*> endpoints_;
#ifdef AXIHC_PHASE_CHECK
  // Phase-checker state (sim/phase_check.hpp). Compiled out of the default
  // build along with the hooks, so uninstrumented channels carry neither
  // per-access nor footprint overhead. Mutable: read-side hooks record from
  // const accessors.
  mutable std::vector<const Component*> ledger_accessors_;
  mutable std::uint64_t ledger_commit_epoch_ = 0;
#endif
  // Commit lists this channel enqueues itself on: the Simulator's main
  // lists, or (island engine) its island's local lists. Null when
  // standalone. Pooled channels (lane_ != kNoLane) enqueue their lane on
  // lane_list_; unpooled ones enqueue themselves on dirty_list_.
  std::vector<ChannelBase*>* dirty_list_ = nullptr;
  std::vector<std::uint32_t>* lane_list_ = nullptr;
  const std::uint64_t* epoch_ = nullptr;  // Simulator's cycle epoch counter
  std::uint64_t enqueue_epoch_ = 0;       // epoch of the last enqueue
  std::uint32_t lane_ = kNoLane;          // pool lane (set via adopt_hot_lane)
  bool dirty_ = false;

 protected:
  /// For adopt_hot_lane overrides (lane_ itself is private to keep the
  /// dedup machinery in one place).
  void set_pool_lane(std::uint32_t lane) { lane_ = lane; }
};

template <typename T>
class TimingChannel final : public ChannelBase {
 public:
  /// A channel with `capacity` storage slots (the register/FIFO depth of the
  /// link). Capacity 1 models a plain pipeline register.
  TimingChannel(std::string name, std::size_t capacity)
      : ChannelBase(std::move(name)),
        capacity_(static_cast<std::uint32_t>(capacity)),
        slots_(capacity) {
    AXIHC_CHECK(capacity_ > 0);
    // The hot counter words are u32 pool lanes (sim/soa_pool.hpp); cap well
    // below the u32 range so occupancy sums can never wrap.
    AXIHC_CHECK(capacity <= (std::size_t{1} << 30));
  }

  /// True if the producer may push this cycle (backpressure check).
  [[nodiscard]] bool can_push() const {
    ledger_on_peek();
    return hot_->snapshot + hot_->staged < capacity_;
  }

  /// Stages `value` for delivery next cycle. Requires can_push().
  void push(T value) {
    ledger_on_write();
    AXIHC_CHECK_MSG(can_push(), "push on full channel '" << name() << "'");
    slots_[wrap(hot_->head + hot_->committed + hot_->staged)] =
        std::move(value);
    ++hot_->staged;
    ++total_pushes_;
    mark_dirty();
  }

  /// True if the consumer can pop a (previously committed) element.
  [[nodiscard]] bool can_pop() const {
    ledger_on_peek();
    return hot_->committed != 0;
  }

  [[nodiscard]] bool empty() const {
    ledger_on_peek();
    return hot_->committed == 0;
  }

  /// Oldest committed element. Requires can_pop().
  [[nodiscard]] const T& front() const {
    ledger_on_read();
    AXIHC_CHECK_MSG(can_pop(), "front on empty channel '" << name() << "'");
    return slots_[hot_->head];
  }

  /// Removes and returns the oldest committed element. Requires can_pop().
  T pop() {
    ledger_on_read();
    AXIHC_CHECK_MSG(can_pop(), "pop on empty channel '" << name() << "'");
    T value = std::move(slots_[hot_->head]);
    hot_->head = wrap(hot_->head + 1);
    --hot_->committed;
    ++total_pops_;
    mark_dirty();  // the next cycle's occupancy snapshot must drop
    return value;
  }

  /// Committed elements currently queued (in-flight occupancy).
  [[nodiscard]] std::size_t size() const {
    ledger_on_peek();
    return hot_->committed;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Lifetime traffic counters (used by throughput probes).
  [[nodiscard]] std::uint64_t total_pushes() const {
    ledger_on_peek();
    return total_pushes_;
  }
  [[nodiscard]] std::uint64_t total_pops() const {
    ledger_on_peek();
    return total_pops_;
  }

  void commit() override {
    ledger_on_commit();
    hot_->committed += hot_->staged;
    hot_->staged = 0;
    hot_->snapshot = hot_->committed;
    clear_dirty();
  }

  void reset() override {
    clear_contents();
    total_pushes_ = 0;
    total_pops_ = 0;
  }

  bool adopt_hot_lane(ChannelHot* lane, std::uint32_t index) override {
    if (hot_ != lane) {
      *lane = *hot_;
      hot_ = lane;
    }
    set_pool_lane(index);
    return true;
  }

  void release_hot_lane() override {
    if (hot_ != &inline_hot_) {
      inline_hot_ = *hot_;
      hot_ = &inline_hot_;
    }
    set_pool_lane(kNoLane);
  }

  void append_digest(StateDigest& d) const override {
    d.mix(name());
    d.mix(static_cast<std::uint64_t>(hot_->committed));
    d.mix(static_cast<std::uint64_t>(hot_->staged));
    d.mix(total_pushes_);
    d.mix(total_pops_);
    for (std::uint32_t i = 0; i < hot_->committed + hot_->staged; ++i) {
      digest_detail::fold(d, slots_[wrap(hot_->head + i)]);
    }
  }

  /// Drops all queued and staged elements but keeps the traffic counters
  /// (used for port flushes, e.g. eFIFO decoupling, not full resets).
  /// A no-op on an already-empty channel, so continuous flushing (a
  /// decoupled port) does not keep marking the channel dirty.
  void clear_contents() {
    ledger_on_flush();
    ChannelHot& h = *hot_;
    if (h.committed == 0 && h.staged == 0 && h.snapshot == 0) return;
    h = ChannelHot{};
    mark_dirty();
  }

 private:
  [[nodiscard]] std::uint32_t wrap(std::uint32_t i) const {
    // Capacities are arbitrary (not power-of-two); a compare beats div.
    return i >= capacity_ ? i - capacity_ : i;
  }

  std::uint32_t capacity_;
  std::vector<T> slots_;  // fixed ring: [head, +committed) visible,
                          // then [.., +staged) pending commit
  // Hot counter words: channel-local until the owning Simulator's pool
  // adopts them (adopt_hot_lane), after which hot_ points at the pool lane.
  // Accessors are layout-blind — same code either way.
  ChannelHot inline_hot_;
  ChannelHot* hot_ = &inline_hot_;
  std::uint64_t total_pushes_ = 0;
  std::uint64_t total_pops_ = 0;
};

}  // namespace axihc
