// Point-to-point timing channel — the wire+register abstraction of the
// simulation kernel.
//
// Semantics (two-phase, deterministic):
//  * During a cycle, `push` stages an element; staged elements become visible
//    to the consumer only after `commit()` runs at the end of the cycle.
//    Hence every hop through a channel costs exactly one clock cycle, which
//    matches the paper's per-stage latency accounting ("one clock cycle is
//    spent on the slave interface of the eFIFO, one on the TS, ...").
//  * `can_push` is evaluated against the occupancy snapshotted at the start
//    of the cycle, so the answer does not depend on whether the consumer
//    already popped this cycle. Together with staged pushes this makes the
//    simulation independent of component tick order: runs are
//    bit-deterministic by construction and there are no combinational loops.
//  * `pop` consumes elements committed in earlier cycles.
//
// Storage is a single fixed-capacity ring allocated once at construction:
// committed and staged elements share the ring (committed at the head,
// staged behind them), so push/pop/commit never touch the heap. One ring of
// `capacity` slots always suffices because committed + staged <= capacity is
// an invariant: can_push requires snapshot + staged < capacity, committed
// can only shrink within a cycle, and commit sets the new committed count to
// committed + staged <= snapshot + (capacity - snapshot) = capacity.
//
// Channels also self-report to their Simulator's dirty list: any push, pop
// or flush marks the channel dirty, and only dirty channels are committed at
// the end of a cycle (quiet channels need neither data movement nor a new
// snapshot). Standalone channels (no Simulator) just keep the flag locally.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace axihc {

/// Type-erased base so the Simulator can commit/reset heterogeneous channels.
class ChannelBase {
 public:
  explicit ChannelBase(std::string name) : name_(std::move(name)) {}
  virtual ~ChannelBase() = default;
  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  /// End-of-cycle: make staged pushes visible and re-snapshot occupancy.
  virtual void commit() = 0;

  /// Hardware reset: drop all contents.
  virtual void reset() = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  /// Enqueues this channel on its Simulator's end-of-cycle commit list (once
  /// per cycle). Called on any state change that a commit must observe:
  /// push (staged data), pop and flush (the next snapshot changes).
  void mark_dirty() {
    if (!dirty_) {
      dirty_ = true;
      if (dirty_list_ != nullptr) dirty_list_->push_back(this);
    }
  }

  /// commit() implementations call this so a later change re-enqueues.
  void clear_dirty() { dirty_ = false; }

 private:
  friend class Simulator;

  std::string name_;
  std::vector<ChannelBase*>* dirty_list_ = nullptr;  // owned by the Simulator
  bool dirty_ = false;
};

template <typename T>
class TimingChannel final : public ChannelBase {
 public:
  /// A channel with `capacity` storage slots (the register/FIFO depth of the
  /// link). Capacity 1 models a plain pipeline register.
  TimingChannel(std::string name, std::size_t capacity)
      : ChannelBase(std::move(name)), capacity_(capacity), slots_(capacity) {
    AXIHC_CHECK(capacity_ > 0);
  }

  /// True if the producer may push this cycle (backpressure check).
  [[nodiscard]] bool can_push() const {
    return snapshot_ + staged_ < capacity_;
  }

  /// Stages `value` for delivery next cycle. Requires can_push().
  void push(T value) {
    AXIHC_CHECK_MSG(can_push(), "push on full channel '" << name() << "'");
    slots_[wrap(head_ + committed_ + staged_)] = std::move(value);
    ++staged_;
    ++total_pushes_;
    mark_dirty();
  }

  /// True if the consumer can pop a (previously committed) element.
  [[nodiscard]] bool can_pop() const { return committed_ != 0; }

  [[nodiscard]] bool empty() const { return committed_ == 0; }

  /// Oldest committed element. Requires can_pop().
  [[nodiscard]] const T& front() const {
    AXIHC_CHECK_MSG(can_pop(), "front on empty channel '" << name() << "'");
    return slots_[head_];
  }

  /// Removes and returns the oldest committed element. Requires can_pop().
  T pop() {
    AXIHC_CHECK_MSG(can_pop(), "pop on empty channel '" << name() << "'");
    T value = std::move(slots_[head_]);
    head_ = wrap(head_ + 1);
    --committed_;
    ++total_pops_;
    mark_dirty();  // the next cycle's occupancy snapshot must drop
    return value;
  }

  /// Committed elements currently queued (in-flight occupancy).
  [[nodiscard]] std::size_t size() const { return committed_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Lifetime traffic counters (used by throughput probes).
  [[nodiscard]] std::uint64_t total_pushes() const { return total_pushes_; }
  [[nodiscard]] std::uint64_t total_pops() const { return total_pops_; }

  void commit() override {
    committed_ += staged_;
    staged_ = 0;
    snapshot_ = committed_;
    clear_dirty();
  }

  void reset() override {
    clear_contents();
    total_pushes_ = 0;
    total_pops_ = 0;
  }

  /// Drops all queued and staged elements but keeps the traffic counters
  /// (used for port flushes, e.g. eFIFO decoupling, not full resets).
  /// A no-op on an already-empty channel, so continuous flushing (a
  /// decoupled port) does not keep marking the channel dirty.
  void clear_contents() {
    if (committed_ == 0 && staged_ == 0 && snapshot_ == 0) return;
    head_ = 0;
    committed_ = 0;
    staged_ = 0;
    snapshot_ = 0;
    mark_dirty();
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    // Capacities are arbitrary (not power-of-two); a compare beats div.
    return i >= capacity_ ? i - capacity_ : i;
  }

  std::size_t capacity_;
  std::vector<T> slots_;          // fixed ring: [head_, +committed_) visible,
  std::size_t head_ = 0;          // then [.., +staged_) pending commit
  std::size_t committed_ = 0;
  std::size_t staged_ = 0;
  std::size_t snapshot_ = 0;      // occupancy at cycle start
  std::uint64_t total_pushes_ = 0;
  std::uint64_t total_pops_ = 0;
};

}  // namespace axihc
