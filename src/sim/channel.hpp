// Point-to-point timing channel — the wire+register abstraction of the
// simulation kernel.
//
// Semantics (two-phase, deterministic):
//  * During a cycle, `push` stages an element; staged elements become visible
//    to the consumer only after `commit()` runs at the end of the cycle.
//    Hence every hop through a channel costs exactly one clock cycle, which
//    matches the paper's per-stage latency accounting ("one clock cycle is
//    spent on the slave interface of the eFIFO, one on the TS, ...").
//  * `can_push` is evaluated against the occupancy snapshotted at the start
//    of the cycle, so the answer does not depend on whether the consumer
//    already popped this cycle. Together with staged pushes this makes the
//    simulation independent of component tick order: runs are
//    bit-deterministic by construction and there are no combinational loops.
//  * `pop` consumes elements committed in earlier cycles.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace axihc {

/// Type-erased base so the Simulator can commit/reset heterogeneous channels.
class ChannelBase {
 public:
  explicit ChannelBase(std::string name) : name_(std::move(name)) {}
  virtual ~ChannelBase() = default;
  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  /// End-of-cycle: make staged pushes visible and re-snapshot occupancy.
  virtual void commit() = 0;

  /// Hardware reset: drop all contents.
  virtual void reset() = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

template <typename T>
class TimingChannel final : public ChannelBase {
 public:
  /// A channel with `capacity` storage slots (the register/FIFO depth of the
  /// link). Capacity 1 models a plain pipeline register.
  TimingChannel(std::string name, std::size_t capacity)
      : ChannelBase(std::move(name)), capacity_(capacity) {
    AXIHC_CHECK(capacity_ > 0);
  }

  /// True if the producer may push this cycle (backpressure check).
  [[nodiscard]] bool can_push() const {
    return occupancy_at_cycle_start_ + staged_.size() < capacity_;
  }

  /// Stages `value` for delivery next cycle. Requires can_push().
  void push(T value) {
    AXIHC_CHECK_MSG(can_push(), "push on full channel '" << name() << "'");
    staged_.push_back(std::move(value));
    ++total_pushes_;
  }

  /// True if the consumer can pop a (previously committed) element.
  [[nodiscard]] bool can_pop() const { return !committed_.empty(); }

  [[nodiscard]] bool empty() const { return committed_.empty(); }

  /// Oldest committed element. Requires can_pop().
  [[nodiscard]] const T& front() const {
    AXIHC_CHECK_MSG(can_pop(), "front on empty channel '" << name() << "'");
    return committed_.front();
  }

  /// Removes and returns the oldest committed element. Requires can_pop().
  T pop() {
    AXIHC_CHECK_MSG(can_pop(), "pop on empty channel '" << name() << "'");
    T value = std::move(committed_.front());
    committed_.pop_front();
    ++total_pops_;
    return value;
  }

  /// Committed elements currently queued (in-flight occupancy).
  [[nodiscard]] std::size_t size() const { return committed_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Lifetime traffic counters (used by throughput probes).
  [[nodiscard]] std::uint64_t total_pushes() const { return total_pushes_; }
  [[nodiscard]] std::uint64_t total_pops() const { return total_pops_; }

  void commit() override {
    for (auto& v : staged_) committed_.push_back(std::move(v));
    staged_.clear();
    occupancy_at_cycle_start_ = committed_.size();
  }

  void reset() override {
    clear_contents();
    total_pushes_ = 0;
    total_pops_ = 0;
  }

  /// Drops all queued and staged elements but keeps the traffic counters
  /// (used for port flushes, e.g. eFIFO decoupling, not full resets).
  void clear_contents() {
    committed_.clear();
    staged_.clear();
    occupancy_at_cycle_start_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<T> committed_;
  std::vector<T> staged_;
  std::size_t occupancy_at_cycle_start_ = 0;
  std::uint64_t total_pushes_ = 0;
  std::uint64_t total_pops_ = 0;
};

}  // namespace axihc
