// Base class for everything with clocked behaviour (interconnects, memory
// controllers, accelerators, monitors).
#pragma once

#include <string>
#include <utility>

#include "common/types.hpp"
#include "sim/digest.hpp"

namespace axihc {

class HotStatePool;

/// What a component's tick() may touch — the contract the island engine
/// (src/sim/island.hpp) partitions on.
enum class TickScope : std::uint8_t {
  /// tick() may read or write state outside this component and its
  /// registered channels (e.g. it samples foreign counters through a
  /// registry, or drives another component directly). Serial-scope
  /// components collapse the whole system into one island: the engine
  /// then ticks everything in registration order, exactly like the
  /// serial kernel.
  kSerial,
  /// tick() touches only this component's own state and channels it is a
  /// declared endpoint of (ChannelBase::add_endpoint). Island-scope
  /// components may tick concurrently with components in other islands.
  kIsland,
};

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// One clock cycle of behaviour. Reads committed channel state, stages
  /// pushes, updates internal registers. Must not assume anything about the
  /// tick order of other components.
  virtual void tick(Cycle now) = 0;

  /// Hardware reset. Default: stateless.
  virtual void reset() {}

  /// Fast-forward hook: the earliest cycle >= `now` at which tick() might do
  /// observable work, under the assumption that NO component (including this
  /// one) ticks in the interim — i.e. the whole system stays frozen. Return
  /// `now` when active or unsure (always safe), a future cycle when the next
  /// interesting moment is self-scheduled (a deadline, a period boundary),
  /// or kNoCycle when only external stimulus could wake this component.
  ///
  /// The kernel skips cycle N only when EVERY component reports
  /// next_activity(N) > N, so implementations may rely on all other
  /// components' state being unchanged across the skipped stretch. Must not
  /// mutate any state (it runs on cycles that are then skipped).
  [[nodiscard]] virtual Cycle next_activity(Cycle now) const { return now; }

  /// Hot-state adoption hook (sim/soa_pool.hpp): called once per component
  /// at elaboration time by the owning Simulator. Components with per-cycle
  /// hot scalars (budget counters, deadline caches) move them into the pool
  /// here via PooledWords/PooledCycle::adopt, declaring themselves as the
  /// slot owner; axihc-lint cross-checks observed writers against that
  /// declaration. Default: nothing to pool.
  virtual void adopt_hot_state(HotStatePool& pool) { (void)pool; }

  /// Parallel-tick contract (see TickScope). Default kSerial: a component
  /// that has not audited its tick() for foreign-state access must not be
  /// parallelized — one unaudited component safely serializes the system.
  [[nodiscard]] virtual TickScope tick_scope() const {
    return TickScope::kSerial;
  }

  /// Folds this component's architecturally visible state (counters,
  /// latched registers, completion logs) into `d` for
  /// Simulator::state_digest(). Default: stateless.
  virtual void append_digest(StateDigest& d) const { (void)d; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace axihc
