// Base class for everything with clocked behaviour (interconnects, memory
// controllers, accelerators, monitors).
#pragma once

#include <string>
#include <utility>

#include "common/types.hpp"

namespace axihc {

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// One clock cycle of behaviour. Reads committed channel state, stages
  /// pushes, updates internal registers. Must not assume anything about the
  /// tick order of other components.
  virtual void tick(Cycle now) = 0;

  /// Hardware reset. Default: stateless.
  virtual void reset() {}

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace axihc
