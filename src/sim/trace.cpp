#include "sim/trace.hpp"

#include <ostream>
#include <utility>

namespace axihc {

void EventTrace::push(TraceEvent e) {
  if (capacity_ != 0 && events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void EventTrace::record(Cycle cycle, std::string source, std::string event) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kInstant, 0.0});
}

void EventTrace::record_begin(Cycle cycle, std::string source,
                              std::string event) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kBegin, 0.0});
}

void EventTrace::record_end(Cycle cycle, std::string source,
                            std::string event) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kEnd, 0.0});
}

void EventTrace::record_counter(Cycle cycle, std::string source,
                                std::string event, double value) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kCounter,
        value});
}

Cycle EventTrace::first(const std::string& source,
                        const std::string& event) const {
  for (const auto& e : events_) {
    if (e.source == source && e.event == event) return e.cycle;
  }
  return kNoCycle;
}

std::size_t EventTrace::count(const std::string& source,
                              const std::string& event) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.source == source && e.event == event) ++n;
  }
  return n;
}

void EventTrace::dump(std::ostream& os) const {
  for (const auto& e : events_) {
    os << e.cycle << '\t' << e.source << '\t' << e.event;
    if (e.kind == TraceKind::kCounter) os << '\t' << e.value;
    os << '\n';
  }
}

}  // namespace axihc
