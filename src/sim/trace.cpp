#include "sim/trace.hpp"

#include <ostream>

namespace axihc {

void EventTrace::record(Cycle cycle, std::string source, std::string event) {
  if (!enabled_) return;
  events_.push_back({cycle, std::move(source), std::move(event)});
}

Cycle EventTrace::first(const std::string& source,
                        const std::string& event) const {
  for (const auto& e : events_) {
    if (e.source == source && e.event == event) return e.cycle;
  }
  return kNoCycle;
}

std::size_t EventTrace::count(const std::string& source,
                              const std::string& event) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.source == source && e.event == event) ++n;
  }
  return n;
}

void EventTrace::dump(std::ostream& os) const {
  for (const auto& e : events_) {
    os << e.cycle << '\t' << e.source << '\t' << e.event << '\n';
  }
}

}  // namespace axihc
