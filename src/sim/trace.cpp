#include "sim/trace.hpp"

#include <atomic>
#include <ostream>
#include <utility>

namespace axihc {

namespace {
thread_local TraceStagingBuffer* tls_staging = nullptr;
thread_local std::uint32_t tls_sequence = 0;
// Process-wide count of enabled EventTrace instances (any_enabled()).
std::atomic<int> g_enabled_traces{0};
}  // namespace

EventTrace::~EventTrace() {
  if (enabled_) g_enabled_traces.fetch_sub(1, std::memory_order_relaxed);
}

void EventTrace::enable(bool on) {
  if (on == enabled_) return;
  enabled_ = on;
  g_enabled_traces.fetch_add(on ? 1 : -1, std::memory_order_relaxed);
}

bool EventTrace::any_enabled() {
  return g_enabled_traces.load(std::memory_order_relaxed) != 0;
}

void TraceStagingBuffer::install(TraceStagingBuffer* buf) {
  tls_staging = buf;
}

TraceStagingBuffer* TraceStagingBuffer::current() { return tls_staging; }

void TraceStagingBuffer::set_sequence(std::uint32_t seq) {
  tls_sequence = seq;
}

void merge_staged_traces(TraceStagingBuffer* const* buffers, std::size_t n) {
  // K-way merge by ascending registration index. Each buffer is internally
  // sorted (components tick in ascending index within an island) and no
  // index appears in two buffers (a component belongs to one island), so
  // repeatedly draining the run at the smallest front index reproduces the
  // serial recording order exactly.
  static thread_local std::vector<std::size_t> pos;
  pos.assign(n, 0);
  for (;;) {
    std::size_t best = n;
    std::uint32_t best_seq = 0;
    for (std::size_t b = 0; b < n; ++b) {
      if (pos[b] >= buffers[b]->staged_.size()) continue;
      const std::uint32_t seq = buffers[b]->staged_[pos[b]].seq;
      if (best == n || seq < best_seq) {
        best = b;
        best_seq = seq;
      }
    }
    if (best == n) break;
    auto& staged = buffers[best]->staged_;
    std::size_t& p = pos[best];
    do {
      auto& entry = staged[p];
      entry.trace->commit_push(std::move(entry.event));
      ++p;
    } while (p < staged.size() && staged[p].seq == best_seq);
  }
  for (std::size_t b = 0; b < n; ++b) buffers[b]->clear();
}

void EventTrace::push(TraceEvent e) {
  if (tls_staging != nullptr) {
    tls_staging->staged_.push_back({tls_sequence, this, std::move(e)});
    return;
  }
  commit_push(std::move(e));
}

void EventTrace::commit_push(TraceEvent e) {
  if (capacity_ != 0 && events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void EventTrace::record(Cycle cycle, std::string source, std::string event) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kInstant, 0.0});
}

void EventTrace::record_begin(Cycle cycle, std::string source,
                              std::string event) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kBegin, 0.0});
}

void EventTrace::record_end(Cycle cycle, std::string source,
                            std::string event) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kEnd, 0.0});
}

void EventTrace::record_counter(Cycle cycle, std::string source,
                                std::string event, double value) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kCounter,
        value});
}

void EventTrace::record_flow_start(Cycle cycle, std::string source,
                                   std::string event, std::uint64_t id) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kFlowStart,
        static_cast<double>(id)});
}

void EventTrace::record_flow_end(Cycle cycle, std::string source,
                                 std::string event, std::uint64_t id) {
  if (!enabled_) return;
  push({cycle, std::move(source), std::move(event), TraceKind::kFlowEnd,
        static_cast<double>(id)});
}

Cycle EventTrace::first(const std::string& source,
                        const std::string& event) const {
  for (const auto& e : events_) {
    if (e.source == source && e.event == event) return e.cycle;
  }
  return kNoCycle;
}

std::size_t EventTrace::count(const std::string& source,
                              const std::string& event) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.source == source && e.event == event) ++n;
  }
  return n;
}

void EventTrace::dump(std::ostream& os) const {
  for (const auto& e : events_) {
    os << e.cycle << '\t' << e.source << '\t' << e.event;
    if (e.kind == TraceKind::kCounter) os << '\t' << e.value;
    os << '\n';
  }
}

}  // namespace axihc
