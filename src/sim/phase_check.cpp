#include "sim/phase_check.hpp"

#include <atomic>
#include <mutex>

#include "sim/channel.hpp"
#include "sim/component.hpp"

namespace axihc {

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint8_t> g_phase{
    static_cast<std::uint8_t>(EnginePhase::kOutside)};
thread_local const Component* t_current = nullptr;

std::mutex g_violations_mutex;
std::vector<PhaseViolation> g_violations;

}  // namespace

void PhaseCheck::arm(bool on) {
  if (on) {
    std::lock_guard<std::mutex> lock(g_violations_mutex);
    g_violations.clear();
  }
  g_armed.store(on, std::memory_order_relaxed);
}

bool PhaseCheck::armed() { return g_armed.load(std::memory_order_relaxed); }

void PhaseCheck::set_phase(EnginePhase phase) {
  g_phase.store(static_cast<std::uint8_t>(phase), std::memory_order_release);
}

EnginePhase PhaseCheck::phase() {
  return static_cast<EnginePhase>(g_phase.load(std::memory_order_acquire));
}

void PhaseCheck::set_current(const Component* component) {
  t_current = component;
}

const Component* PhaseCheck::current() { return t_current; }

void PhaseCheck::record(const std::string& channel, const std::string& what,
                        Cycle epoch) {
  PhaseViolation v;
  v.channel = channel;
  v.component = t_current != nullptr ? t_current->name() : std::string{};
  v.what = what;
  v.epoch = epoch;
  std::lock_guard<std::mutex> lock(g_violations_mutex);
  g_violations.push_back(std::move(v));
}

std::size_t PhaseCheck::violation_count() {
  std::lock_guard<std::mutex> lock(g_violations_mutex);
  return g_violations.size();
}

std::vector<PhaseViolation> PhaseCheck::snapshot() {
  std::lock_guard<std::mutex> lock(g_violations_mutex);
  return g_violations;
}

std::vector<PhaseViolation> PhaseCheck::drain() {
  std::lock_guard<std::mutex> lock(g_violations_mutex);
  std::vector<PhaseViolation> out;
  out.swap(g_violations);
  return out;
}

void PhaseCheck::reset() {
  g_armed.store(false, std::memory_order_relaxed);
  g_phase.store(static_cast<std::uint8_t>(EnginePhase::kOutside),
                std::memory_order_relaxed);
  t_current = nullptr;
  std::lock_guard<std::mutex> lock(g_violations_mutex);
  g_violations.clear();
}

#ifdef AXIHC_PHASE_CHECK

// --- ChannelBase instrumentation (declared in sim/channel.hpp) ----------
//
// The ledger and the phase rules live here, out of the header, so the hot
// channel methods only pay an outlined call (and only in instrumented
// builds; the default build compiles the hooks away entirely).

void ChannelBase::ledger_note_accessor() const {
  const Component* c = PhaseCheck::current();
  if (c == nullptr) return;  // setup/teardown code outside any tick
  for (const Component* seen : ledger_accessors_) {
    if (seen == c) return;
  }
  ledger_accessors_.push_back(c);
}

void ChannelBase::ledger_on_read() const {
  if (!PhaseCheck::armed()) return;
  ledger_note_accessor();
  const EnginePhase p = PhaseCheck::phase();
  const std::uint64_t epoch = epoch_ != nullptr ? *epoch_ : 0;
  if (p == EnginePhase::kCommit) {
    PhaseCheck::record(name(),
                       "committed-state read during the engine commit phase",
                       epoch);
  } else if (p == EnginePhase::kCompute && epoch != 0 &&
             ledger_commit_epoch_ == epoch) {
    PhaseCheck::record(
        name(),
        "same-cycle read-after-commit: observes data staged this cycle",
        epoch);
  }
}

void ChannelBase::ledger_on_peek() const {
  if (!PhaseCheck::armed()) return;
  ledger_note_accessor();
}

void ChannelBase::ledger_on_write() const {
  if (!PhaseCheck::armed()) return;
  ledger_note_accessor();
  if (PhaseCheck::phase() == EnginePhase::kCommit) {
    PhaseCheck::record(name(), "push during the engine commit phase",
                       epoch_ != nullptr ? *epoch_ : 0);
  }
}

void ChannelBase::ledger_on_commit() const {
  if (!PhaseCheck::armed()) return;
  const std::uint64_t epoch = epoch_ != nullptr ? *epoch_ : 0;
  ledger_commit_epoch_ = epoch;
  if (PhaseCheck::phase() == EnginePhase::kCompute) {
    PhaseCheck::record(
        name(),
        "mid-compute commit: staged data made visible in the same cycle",
        epoch);
  }
}

void ChannelBase::ledger_on_flush() const {
  if (!PhaseCheck::armed()) return;
  // Flushing committed contents mid-compute is a sanctioned operation (the
  // HyperConnect decoupling path drops a faulted port's queues from its own
  // tick); only record the accessor for the endpoint cross-check.
  ledger_note_accessor();
}

#endif  // AXIHC_PHASE_CHECK

}  // namespace axihc
