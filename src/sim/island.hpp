// Island partition for the parallel tick engine.
//
// An island is a connected component of the bipartite (component, channel)
// graph induced by ChannelBase::add_endpoint declarations. Two components
// share an island iff some channel chain connects them; since an
// island-scope component's tick() touches only its own state and its
// declared channels (see TickScope), the compute phases of distinct islands
// are data-independent and may run concurrently. One serial-scope component
// collapses the whole partition into a single island holding everything in
// registration order — the engine then degenerates to the serial kernel's
// behaviour, so unaudited components are safe by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/trace.hpp"

namespace axihc {

class ChannelBase;
class Component;

struct Island {
  // Packed arrays: the compute phase walks components front to back, so a
  // cycle's virtual tick dispatches for one island stay on one core with
  // their seq tags alongside.
  std::vector<Component*> components;  // ascending registration index
  std::vector<std::uint32_t> seq;      // global registration index per entry
  std::vector<ChannelBase*> dirty;     // island-local commit list (unpooled)
  // Island-local commit list of pooled channel lanes (sim/soa_pool.hpp):
  // committed by the backend kernels instead of virtual commit(). seq[]
  // doubles as the island's slice into the certificate array — cert lane ==
  // global registration index — so per-island fast-forward refreshes
  // compose with the pooled reduction without a relayout.
  std::vector<std::uint32_t> dirty_lanes;
  TraceStagingBuffer staging;          // per-island trace sink

  /// Fast-forward reduce: min next_activity over members, clipped to
  /// `bound`. Returns `now` (early out) as soon as a member is active.
  [[nodiscard]] Cycle next_activity(Cycle now, Cycle bound) const;
};

struct IslandPartition {
  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

  std::vector<Island> islands;  // ordered by smallest member index
  /// Island owning each registered channel (parallel to the Simulator's
  /// channel vector); kUnassigned channels (no registered endpoint) stay on
  /// the main dirty list.
  std::vector<std::size_t> channel_island;
  bool collapsed = false;  // a serial-scope component forced one island
};

/// Partitions the registered graph. Pure function of the topology; called at
/// elaboration time (lazily, from the first step after a registration).
IslandPartition partition_islands(const std::vector<Component*>& components,
                                  const std::vector<ChannelBase*>& channels);

}  // namespace axihc
