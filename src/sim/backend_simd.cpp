// SSE2 and AVX2 kernel flavours (see backend.hpp). Compiled with GCC/Clang
// per-function target attributes so this TU builds regardless of the global
// -m flags; dispatch never reaches these on CPUs without the ISA (runtime
// CPUID in detect_cpu_features gates selection).
//
// Lane math recap for the commit kernels: a ChannelHot lane is four packed
// u32 words [head, committed, staged, snapshot]; a commit rewrites it to
// [head, committed + staged, 0, committed + staged]. Vector-wise that is
// two dword broadcasts (committed, staged), one add, and a blend/mask to
// place the sum into the committed and snapshot words while zeroing staged.
//
// The min-reduction runs in a sign-biased domain: SSE2/AVX2 only compare
// signed 64-bit values (and SSE2 not even that, see cmpgt64_sse2), so
// operands are XORed with 2^63 on load, reduced with signed compares, and
// un-biased at the end — an exact unsigned min for the full u64 range,
// kNoCycle (UINT64_MAX) included.
#include "sim/backend.hpp"

#include "sim/soa_pool.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define AXIHC_X86_SIMD 1
#include <immintrin.h>
#endif

namespace axihc::backend_detail {

#ifdef AXIHC_X86_SIMD

namespace {

// --- SSE2 ----------------------------------------------------------------

/// One-lane commit step shared by the SSE2 dense/sparse kernels (and the
/// AVX2 sparse kernel: scattered lanes gain nothing from 256-bit ops).
__attribute__((target("sse2"))) inline __m128i commit_lane_sse2(__m128i v) {
  const __m128i cc = _mm_shuffle_epi32(v, 0x55);  // [c,c,c,c]
  const __m128i ss = _mm_shuffle_epi32(v, 0xaa);  // [s,s,s,s]
  const __m128i t = _mm_add_epi32(cc, ss);        // [c+s x4]
  const __m128i keep_h = _mm_set_epi32(0, 0, 0, -1);
  const __m128i take_t = _mm_set_epi32(-1, 0, -1, 0);
  return _mm_or_si128(_mm_and_si128(v, keep_h), _mm_and_si128(t, take_t));
}

__attribute__((target("sse2"))) void commit_dense_sse2(ChannelHot* hot,
                                                       std::size_t n) {
  __m128i* p = reinterpret_cast<__m128i*>(hot);
  for (std::size_t i = 0; i < n; ++i) {
    _mm_storeu_si128(p + i, commit_lane_sse2(_mm_loadu_si128(p + i)));
  }
}

__attribute__((target("sse2"))) void commit_sparse_sse2(
    ChannelHot* hot, const std::uint32_t* lanes, std::size_t n) {
  __m128i* p = reinterpret_cast<__m128i*>(hot);
  for (std::size_t i = 0; i < n; ++i) {
    __m128i* lp = p + lanes[i];
    _mm_storeu_si128(lp, commit_lane_sse2(_mm_loadu_si128(lp)));
  }
}

/// Per-64-bit-element signed a > b mask, built from 32-bit SSE2 compares:
/// the high dwords decide unless equal, in which case the borrow of the
/// 64-bit subtraction (its sign bit) decides. The shuffle broadcasts the
/// high-dword verdict over the element; srai turns the (correct-sign,
/// garbage-bits) dword into a proper all-ones/all-zeros mask.
__attribute__((target("sse2"))) inline __m128i cmpgt64_sse2(__m128i a,
                                                            __m128i b) {
  __m128i r = _mm_and_si128(_mm_cmpeq_epi32(a, b), _mm_sub_epi64(b, a));
  r = _mm_or_si128(r, _mm_cmpgt_epi32(a, b));
  r = _mm_shuffle_epi32(r, _MM_SHUFFLE(3, 3, 1, 1));
  return _mm_srai_epi32(r, 31);
}

__attribute__((target("sse2"))) std::uint64_t min_reduce_sse2(
    const std::uint64_t* v, std::size_t n) {
  const std::uint64_t kBias = 0x8000000000000000ull;
  std::size_t i = 0;
  std::uint64_t result = UINT64_MAX;
  if (n >= 2) {
    const __m128i bias = _mm_set1_epi64x(static_cast<long long>(kBias));
    // Biased UINT64_MAX == INT64_MAX: the identity of the signed min.
    __m128i accb = _mm_set1_epi64x(INT64_MAX);
    for (; i + 2 <= n; i += 2) {
      const __m128i xb = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)), bias);
      const __m128i gt = cmpgt64_sse2(accb, xb);  // acc > x -> take x
      accb = _mm_or_si128(_mm_and_si128(gt, xb), _mm_andnot_si128(gt, accb));
    }
    alignas(16) std::int64_t lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), accb);
    const std::int64_t m = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
    result = static_cast<std::uint64_t>(m) ^ kBias;
  }
  for (; i < n; ++i) {
    if (v[i] < result) result = v[i];
  }
  return result;
}

// --- AVX2 ----------------------------------------------------------------

__attribute__((target("avx2"))) void commit_dense_avx2(ChannelHot* hot,
                                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m256i* p = reinterpret_cast<__m256i*>(hot + i);
    const __m256i v = _mm256_loadu_si256(p);
    const __m256i cc = _mm256_shuffle_epi32(v, 0x55);
    const __m256i ss = _mm256_shuffle_epi32(v, 0xaa);
    const __m256i t = _mm256_add_epi32(cc, ss);
    // Elements 1,3 (and 5,7) take committed+staged; then zero staged (2,6).
    __m256i r = _mm256_blend_epi32(v, t, 0xaa);
    const __m256i zero_staged =
        _mm256_set_epi32(-1, 0, -1, -1, -1, 0, -1, -1);
    r = _mm256_and_si256(r, zero_staged);
    _mm256_storeu_si256(p, r);
  }
  for (; i < n; ++i) {  // odd tail lane
    ChannelHot& h = hot[i];
    h.committed += h.staged;
    h.staged = 0;
    h.snapshot = h.committed;
  }
}

__attribute__((target("avx2"))) std::uint64_t min_reduce_avx2(
    const std::uint64_t* v, std::size_t n) {
  const std::uint64_t kBias = 0x8000000000000000ull;
  std::size_t i = 0;
  std::uint64_t result = UINT64_MAX;
  if (n >= 4) {
    const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(kBias));
    __m256i accb = _mm256_set1_epi64x(INT64_MAX);
    for (; i + 4 <= n; i += 4) {
      const __m256i xb = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), bias);
      const __m256i gt = _mm256_cmpgt_epi64(accb, xb);
      accb = _mm256_blendv_epi8(accb, xb, gt);
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), accb);
    std::int64_t m = lanes[0];
    for (int k = 1; k < 4; ++k) {
      if (lanes[k] < m) m = lanes[k];
    }
    result = static_cast<std::uint64_t>(m) ^ kBias;
  }
  for (; i < n; ++i) {
    if (v[i] < result) result = v[i];
  }
  return result;
}

const BackendKernels kSse2Kernels = {
    BackendKind::kSse2,
    &commit_dense_sse2,
    &commit_sparse_sse2,
    &min_reduce_sse2,
};

const BackendKernels kAvx2Kernels = {
    BackendKind::kAvx2,
    &commit_dense_avx2,
    &commit_sparse_sse2,  // scattered lanes: 128-bit ops are the right width
    &min_reduce_avx2,
};

}  // namespace

const BackendKernels* sse2_kernels() { return &kSse2Kernels; }
const BackendKernels* avx2_kernels() { return &kAvx2Kernels; }

#else  // !AXIHC_X86_SIMD — non-x86 or non-GCC/Clang: scalar only

const BackendKernels* sse2_kernels() { return nullptr; }
const BackendKernels* avx2_kernels() { return nullptr; }

#endif

}  // namespace axihc::backend_detail
