// Phase-race detector for the two-phase channel semantics (axihc-lint
// layer 2) plus the channel access ledger backing the design-rule checker's
// endpoint cross-checks (layer 1).
//
// The kernel's bit-identity guarantees (fast-forward, island-parallel tick)
// rest on three honor-system contracts:
//   1. every component declares each channel it touches as an endpoint
//      (ChannelBase::add_endpoint / AxiLink::attach_endpoint);
//   2. tick_scope() truthfully describes what tick() touches;
//   3. channel state moves strictly in two phases — tick() stages pushes and
//      consumes previously-committed elements, the engine's commit phase
//      alone makes staged data visible.
// A single violation silently corrupts island partitioning or tick-order
// independence with no diagnostic. This checker turns those contracts into
// machine-checked ones.
//
// Instrumentation is compiled in only with the AXIHC_PHASE_CHECK CMake
// option (the default build carries zero per-access overhead; see
// docs/STATIC_ANALYSIS.md). When compiled in, it is armed at run time with
// PhaseCheck::arm(true); the Simulator then stamps the engine phase and the
// currently-ticking component, and every TimingChannel access
//   * records the accessing component into the channel's ledger
//     (ChannelBase::observed_accessors), and
//   * flags two-phase violations: a mid-compute commit() (staged data made
//     visible in the same cycle), a same-cycle read of freshly-committed
//     state, or any channel access during the engine's commit phase.
//
// Threading: the phase stamp is a process-wide atomic written only between
// parallel regions; the current component is thread-local, so arming under
// the island engine is safe as long as the contracts hold — and when they
// do not, the ledger race the detector itself incurs involves exactly the
// channels it is about to report. Lint runs use the serial kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axihc {

class Component;

/// True when the build carries the channel instrumentation
/// (-DAXIHC_PHASE_CHECK=ON). The design-rule checker downgrades its
/// ledger-backed checks to a note when false.
#ifdef AXIHC_PHASE_CHECK
inline constexpr bool kPhaseCheckAvailable = true;
#else
inline constexpr bool kPhaseCheckAvailable = false;
#endif

/// Where the engine currently is within a cycle. kOutside covers setup,
/// reset and inter-cycle code, where channel manipulation is unrestricted.
enum class EnginePhase : std::uint8_t { kOutside, kCompute, kCommit };

/// One detected two-phase violation.
struct PhaseViolation {
  std::string channel;
  std::string component;  // empty when the access came from outside a tick
  std::string what;
  Cycle epoch = 0;  // Simulator epoch (monotone per-cycle stamp)
};

/// Process-wide detector state. All members are static: the Simulator and
/// the channels need to reach it without plumbing a context through every
/// access site, and one process hosts one checked simulation at a time
/// (parallel sweeps run with the checker disarmed).
class PhaseCheck {
 public:
  /// Master switch. Arming clears previously recorded violations.
  static void arm(bool on);
  [[nodiscard]] static bool armed();

  /// Engine phase stamp (Simulator only; written between parallel regions).
  static void set_phase(EnginePhase phase);
  [[nodiscard]] static EnginePhase phase();

  /// Currently-ticking component (Simulator only; thread-local).
  static void set_current(const Component* component);
  [[nodiscard]] static const Component* current();

  /// Appends a violation (channel instrumentation only).
  static void record(const std::string& channel, const std::string& what,
                     Cycle epoch);

  [[nodiscard]] static std::size_t violation_count();

  /// Returns and clears the recorded violations.
  [[nodiscard]] static std::vector<PhaseViolation> drain();

  /// Copies the recorded violations without clearing them (the design-rule
  /// checker reports them; the owner decides when to drain).
  [[nodiscard]] static std::vector<PhaseViolation> snapshot();

  /// Disarms and clears all state (test isolation).
  static void reset();
};

}  // namespace axihc
