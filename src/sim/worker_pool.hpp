// Process-wide persistent worker pool shared by the island tick engine
// (src/sim/island.hpp) and the bench sweep runner (bench::run_parallel), so
// nested parallelism is capped by one pool: a task already running inside
// the pool — or a second concurrent dispatcher — degrades to inline serial
// execution instead of oversubscribing the machine.
//
// Dispatch design (per-round cost matters: the tick engine dispatches every
// simulated cycle):
//  * Each worker has its own cache-line-sized mailbox (a generation counter).
//    The dispatcher publishes the job, then bumps exactly the mailboxes of
//    the workers that participate in the round; workers never read shared
//    round state they were not signalled for, so a laggard from an earlier
//    round can neither tear a newer job description nor double-run an index.
//  * The caller participates as index 0, workers as 1..n-1 with a fixed
//    index → worker mapping (deterministic work assignment).
//  * Idle workers spin briefly, then yield, then sleep on a condition
//    variable — so an oversubscribed host (CI runners, 1-CPU containers)
//    and a pool idling between benchmark runs burn no CPU.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace axihc {

class WorkerPool {
 public:
  /// The lazily-created shared pool, sized for the host. Never destroyed
  /// before process exit (workers are joined by the static destructor).
  static WorkerPool& shared();

  /// True while the calling thread is executing a pool task. Used by nested
  /// dispatchers (an engine inside a sweep job) to fall back to serial.
  static bool on_pool_thread();

  explicit WorkerPool(unsigned worker_threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Largest useful participant count (workers + the calling thread).
  [[nodiscard]] unsigned max_participants() const {
    return static_cast<unsigned>(slots_.size()) + 1;
  }

  /// Runs fn(0), ..., fn(participants-1), each exactly once, and returns
  /// when all have finished. fn(0) runs on the calling thread; fn(i) for
  /// i >= 1 runs on worker i-1. Degrades to an inline serial loop when the
  /// pool is busy (another dispatcher) or the caller is itself a pool task.
  template <typename Fn>
  void run_tasks(unsigned participants, Fn&& fn) {
    auto call = [](void* ctx, unsigned index) {
      (*static_cast<std::remove_reference_t<Fn>*>(ctx))(index);
    };
    run_tasks_impl(participants, call, &fn);
  }

 private:
  using Call = void (*)(void* ctx, unsigned index);

  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> work_gen{0};
    std::atomic<bool> sleeping{false};
  };

  void run_tasks_impl(unsigned participants, Call call, void* ctx);
  void worker_main(unsigned worker_index);

  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> threads_;
  std::mutex run_mutex_;   // serializes dispatchers; try_lock → inline
  std::uint64_t generation_ = 0;  // dispatcher-side, under run_mutex_
  Call job_call_ = nullptr;       // published before mailbox bumps
  void* job_ctx_ = nullptr;
  std::atomic<unsigned> done_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace axihc
