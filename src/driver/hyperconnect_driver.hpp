// The open-source driver of the AXI HyperConnect (§V-A: "the AXI
// HyperConnect comes with an open-source driver to control it").
//
// Typed wrapper over the register map (hyperconnect/register_file.hpp),
// issuing accesses through a RegisterMaster so every configuration change
// travels over the control bus like it would from the hypervisor's CPU.
#pragma once

#include <cstdint>
#include <vector>

#include "driver/register_master.hpp"
#include "hyperconnect/register_file.hpp"

namespace axihc {

class HyperConnectDriver {
 public:
  /// `rm` must be mastering the HyperConnect's control link.
  HyperConnectDriver(RegisterMaster& rm, std::uint32_t num_ports);

  void set_global_enable(bool on);
  void set_nominal_burst(BeatCount beats);
  void set_reservation_period(Cycle period);
  void set_outstanding_limit(std::uint32_t limit);
  void set_budget(PortIndex port, std::uint32_t budget);
  void set_coupled(PortIndex port, bool coupled);

  /// Protection-unit timeout in cycles; 0 disables stall detection.
  void set_prot_timeout(Cycle cycles);
  /// Acknowledges a latched fault so the port's protection unit re-arms
  /// (any write to FAULT_STATUS clears it). Re-coupling is separate.
  void clear_fault(PortIndex port);

  /// One-call reservation setup: period + all budgets.
  void apply_reservation(Cycle period,
                         const std::vector<std::uint32_t>& budgets);

  void read_id(RegisterMaster::ReadCallback cb);
  void read_num_ports(RegisterMaster::ReadCallback cb);
  void read_txn_count(PortIndex port, RegisterMaster::ReadCallback cb);

  /// FAULT_STATUS: bit0 = faulted, bits[3:1] = FaultCause.
  void read_fault_status(PortIndex port, RegisterMaster::ReadCallback cb);
  /// Cumulative faults latched on this port since reset.
  void read_fault_count(PortIndex port, RegisterMaster::ReadCallback cb);
  /// Cycle of the most recent fault on this port.
  void read_fault_cycle(PortIndex port, RegisterMaster::ReadCallback cb);
  /// Sub-transactions of this port still pending downstream; 0 = drained.
  void read_inflight(PortIndex port, RegisterMaster::ReadCallback cb);

  /// All queued configuration traffic has completed.
  [[nodiscard]] bool idle() const { return rm_.idle(); }

  [[nodiscard]] std::uint32_t num_ports() const { return num_ports_; }

 private:
  void check_port(PortIndex port) const;

  RegisterMaster& rm_;
  std::uint32_t num_ports_;
};

}  // namespace axihc
