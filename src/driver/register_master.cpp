#include "driver/register_master.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

RegisterMaster::RegisterMaster(std::string name, AxiLink& control_link)
    : Component(std::move(name)), link_(control_link) {
  link_.attach_endpoint(*this);
}

void RegisterMaster::reset() {
  queue_.clear();
  awaiting_b_ = false;
  awaiting_r_ = false;
  pending_cb_ = nullptr;
  next_id_ = 1;
  completed_ = 0;
}

void RegisterMaster::write_reg(Addr offset, std::uint64_t value) {
  queue_.push_back({true, offset, value, nullptr});
}

void RegisterMaster::read_reg(Addr offset, ReadCallback on_value) {
  queue_.push_back({false, offset, 0, std::move(on_value)});
}

void RegisterMaster::tick(Cycle now) {
  // Collect completions.
  if (awaiting_b_ && link_.b.can_pop()) {
    link_.b.pop();
    awaiting_b_ = false;
    ++completed_;
  }
  if (awaiting_r_ && link_.r.can_pop()) {
    const RBeat beat = link_.r.pop();
    AXIHC_CHECK(beat.last);
    awaiting_r_ = false;
    ++completed_;
    if (pending_cb_) pending_cb_(beat.data);
    pending_cb_ = nullptr;
  }

  // Issue the next operation (one in flight at a time).
  if (awaiting_b_ || awaiting_r_ || queue_.empty()) return;
  Op& op = queue_.front();
  if (op.is_write) {
    if (!link_.aw.can_push() || !link_.w.can_push()) return;
    AddrReq aw;
    aw.id = next_id_++;
    aw.addr = op.offset;
    aw.beats = 1;
    aw.issued_at = now;
    link_.aw.push(aw);
    link_.w.push({op.value, 0xff, true});
    awaiting_b_ = true;
  } else {
    if (!link_.ar.can_push()) return;
    AddrReq ar;
    ar.id = next_id_++;
    ar.addr = op.offset;
    ar.beats = 1;
    ar.issued_at = now;
    link_.ar.push(ar);
    pending_cb_ = std::move(op.on_value);
    awaiting_r_ = true;
  }
  queue_.pop_front();
}

}  // namespace axihc
