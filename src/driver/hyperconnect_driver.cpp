#include "driver/hyperconnect_driver.hpp"

#include "common/check.hpp"

namespace axihc {

HyperConnectDriver::HyperConnectDriver(RegisterMaster& rm,
                                       std::uint32_t num_ports)
    : rm_(rm), num_ports_(num_ports) {
  AXIHC_CHECK(num_ports_ >= 1);
}

void HyperConnectDriver::check_port(PortIndex port) const {
  AXIHC_CHECK_MSG(port < num_ports_,
                  "port " << port << " out of range (num_ports=" << num_ports_
                          << ")");
}

void HyperConnectDriver::set_global_enable(bool on) {
  rm_.write_reg(hcregs::kCtrl, on ? 1 : 0);
}

void HyperConnectDriver::set_nominal_burst(BeatCount beats) {
  rm_.write_reg(hcregs::kNominalBurst, beats);
}

void HyperConnectDriver::set_reservation_period(Cycle period) {
  rm_.write_reg(hcregs::kReservationPeriod, period);
}

void HyperConnectDriver::set_outstanding_limit(std::uint32_t limit) {
  rm_.write_reg(hcregs::kOutstandingLimit, limit);
}

void HyperConnectDriver::set_budget(PortIndex port, std::uint32_t budget) {
  check_port(port);
  rm_.write_reg(hcregs::budget(port), budget);
}

void HyperConnectDriver::set_coupled(PortIndex port, bool coupled) {
  check_port(port);
  rm_.write_reg(hcregs::port_ctrl(port), coupled ? 1 : 0);
}

void HyperConnectDriver::set_prot_timeout(Cycle cycles) {
  rm_.write_reg(hcregs::kProtTimeout, cycles);
}

void HyperConnectDriver::clear_fault(PortIndex port) {
  check_port(port);
  rm_.write_reg(hcregs::fault_status(port), 0);
}

void HyperConnectDriver::apply_reservation(
    Cycle period, const std::vector<std::uint32_t>& budgets) {
  AXIHC_CHECK(budgets.size() == num_ports_);
  for (PortIndex i = 0; i < num_ports_; ++i) set_budget(i, budgets[i]);
  set_reservation_period(period);
}

void HyperConnectDriver::read_id(RegisterMaster::ReadCallback cb) {
  rm_.read_reg(hcregs::kId, std::move(cb));
}

void HyperConnectDriver::read_num_ports(RegisterMaster::ReadCallback cb) {
  rm_.read_reg(hcregs::kNumPorts, std::move(cb));
}

void HyperConnectDriver::read_txn_count(PortIndex port,
                                        RegisterMaster::ReadCallback cb) {
  check_port(port);
  rm_.read_reg(hcregs::txn_count(port), std::move(cb));
}

void HyperConnectDriver::read_fault_status(PortIndex port,
                                           RegisterMaster::ReadCallback cb) {
  check_port(port);
  rm_.read_reg(hcregs::fault_status(port), std::move(cb));
}

void HyperConnectDriver::read_fault_count(PortIndex port,
                                          RegisterMaster::ReadCallback cb) {
  check_port(port);
  rm_.read_reg(hcregs::fault_count(port), std::move(cb));
}

void HyperConnectDriver::read_fault_cycle(PortIndex port,
                                          RegisterMaster::ReadCallback cb) {
  check_port(port);
  rm_.read_reg(hcregs::fault_cycle(port), std::move(cb));
}

void HyperConnectDriver::read_inflight(PortIndex port,
                                       RegisterMaster::ReadCallback cb) {
  check_port(port);
  rm_.read_reg(hcregs::inflight(port), std::move(cb));
}

}  // namespace axihc
