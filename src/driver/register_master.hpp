// A simple AXI-Lite-style register master: the bus-level half of the
// HyperConnect driver. Queues register read/write operations and performs
// them over a control AxiLink, one at a time, in order.
//
// In a real deployment this is the hypervisor's CPU core doing memory-mapped
// I/O through the PS-FPGA interface; here it is a component so the accesses
// travel over the simulated control bus with realistic timing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "axi/axi.hpp"
#include "sim/component.hpp"

namespace axihc {

class RegisterMaster final : public Component {
 public:
  using ReadCallback = std::function<void(std::uint64_t)>;

  RegisterMaster(std::string name, AxiLink& control_link);

  /// Enqueues a register write (fire and forget; completion is implied by
  /// idle()).
  void write_reg(Addr offset, std::uint64_t value);

  /// Enqueues a register read; `on_value` runs when the data returns.
  void read_reg(Addr offset, ReadCallback on_value);

  /// True when no operation is queued or in flight.
  [[nodiscard]] bool idle() const {
    return queue_.empty() && !awaiting_b_ && !awaiting_r_;
  }

  [[nodiscard]] std::uint64_t completed_ops() const { return completed_; }

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    return idle() ? kNoCycle : now;
  }

  /// Channel-pure: drives only its control link. Read callbacks run inside
  /// tick but mutate driver-side software state, which only serial-scope
  /// components (Hypervisor, SW tasks) read — so those readers, not this
  /// master, serialize the system when both are present.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  void append_digest(StateDigest& d) const override {
    d.mix(completed_);
    d.mix(static_cast<std::uint64_t>(queue_.size()));
    d.mix(static_cast<std::uint64_t>(awaiting_b_) |
          (static_cast<std::uint64_t>(awaiting_r_) << 1));
    d.mix(static_cast<std::uint64_t>(next_id_));
  }

 private:
  struct Op {
    bool is_write = false;
    Addr offset = 0;
    std::uint64_t value = 0;
    ReadCallback on_value;
  };

  AxiLink& link_;
  std::deque<Op> queue_;
  bool awaiting_b_ = false;
  bool awaiting_r_ = false;
  ReadCallback pending_cb_;
  TxnId next_id_ = 1;
  std::uint64_t completed_ = 0;
};

}  // namespace axihc
