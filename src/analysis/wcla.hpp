// Worst-case latency analysis (WCLA) for the AXI HyperConnect.
//
// The paper argues (§V-B) that the HyperConnect's slim, open architecture
// makes it "prone to worst-case timing analysis, which is not addressed
// here due to lack of space". This module provides that analysis, derived
// from the implemented architecture, and the test suite validates every
// bound against the cycle-accurate simulation (measured max <= bound).
//
// Model assumptions (matching the simulator):
//  * fixed-granularity (1) round-robin at the EXBAR, non-preemptive
//    transaction service at an in-order memory controller;
//  * burst equalization caps every competing sub-transaction at the nominal
//    burst length;
//  * per-port reservation (budget B_i per period T) when enabled;
//  * constant per-channel pipeline latencies (Fig. 3(a)).
//
// Bounds are *sound* (never below the true worst case under the model) and
// intentionally tight enough to be useful: the validation suite also checks
// they are within a small factor of the observed worst case.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace axihc {

/// Memory-side timing of the analysed platform.
struct AnalysisPlatform {
  /// Worst-case first-word latency of one transaction (row miss).
  Cycle mem_latency = 24;
  /// Dead cycles between transactions at the controller.
  Cycle turnaround = 1;
  /// DRAM refresh (0 = disabled): every refresh_period cycles the device
  /// blocks for refresh_duration cycles. The bounds add one refresh
  /// blocking term per started refresh interval of the busy span.
  Cycle refresh_period = 0;
  Cycle refresh_duration = 0;
  /// Interconnect pipeline latencies per channel (defaults: HyperConnect).
  Cycle ar_latency = 4;
  Cycle r_latency = 2;
  Cycle aw_latency = 4;
  Cycle w_latency = 2;
  Cycle b_latency = 2;
};

/// Interconnect-side parameters of the analysed HyperConnect instance.
struct HcAnalysisConfig {
  std::uint32_t num_ports = 2;
  /// Nominal burst (beats); competing sub-transactions never exceed it.
  /// 0 means equalization off — competitors may issue up to
  /// `max_unequalized_beats`.
  BeatCount nominal_burst = 16;
  /// Largest burst a competitor can issue when equalization is off.
  BeatCount max_unequalized_beats = kMaxAxi4BurstBeats;
  /// Reservation period T (0 = reservation disabled) and per-port budgets.
  Cycle reservation_period = 0;
  std::vector<std::uint32_t> budgets{};
  /// Sub-transactions each competitor can already have granted but unserved
  /// when the analysed request arrives — the per-port outstanding limit
  /// enforced by the TS (HyperConnectConfig::max_outstanding).
  std::uint32_t competitor_backlog = 4;
};

/// Worst-case memory service time of one transaction of `beats` beats
/// (first-word latency + streaming + turnaround), without refresh.
[[nodiscard]] Cycle service_bound(const AnalysisPlatform& p, BeatCount beats);

/// Inflates a busy span by the worst-case DRAM refresh interference it can
/// suffer: one tRFC per started tREFI interval (fixed point, since refresh
/// lengthens the span which can admit further refreshes).
[[nodiscard]] Cycle with_refresh(const AnalysisPlatform& p, Cycle span);

/// Worst-case size (beats) of one competing arbitration unit.
[[nodiscard]] BeatCount competitor_unit_beats(const HcAnalysisConfig& cfg);

/// Number of sub-transactions the TS creates for a `beats`-beat request.
[[nodiscard]] std::uint32_t sub_transaction_count(const HcAnalysisConfig& cfg,
                                                  BeatCount beats);

/// Worst-case response time of a READ of `beats` beats issued by `port`,
/// from the HA asserting ARVALID to the final R beat delivered, with every
/// other port continuously backlogged. Uses the round-robin bound when
/// reservation is off and the reservation supply bound (budget B per
/// period T) when it is on.
[[nodiscard]] Cycle wcrt_read(const HcAnalysisConfig& cfg,
                              const AnalysisPlatform& p, PortIndex port,
                              BeatCount beats);

/// Worst-case response time of a WRITE (AWVALID to B response).
[[nodiscard]] Cycle wcrt_write(const HcAnalysisConfig& cfg,
                               const AnalysisPlatform& p, PortIndex port,
                               BeatCount beats);

/// Bounds used by the runtime latency auditor (src/obs/latency_audit.*).
/// wcrt_read/wcrt_write bound a request arriving at an otherwise-idle own
/// port; the live auditor observes arbitrary workloads where the port's
/// reads and writes share one budget and drain it concurrently, so the
/// audit bound composes the reservation supply bound with the full
/// round-robin arbitration-and-service term instead of a single blocking
/// unit. It is >= the corresponding wcrt_* bound everywhere, and sound for
/// infeasible reservation plans (where budget throttling, not arbitration,
/// dominates). Falls back to the round-robin bound when reservation is off
/// or the port has no budget.
[[nodiscard]] Cycle audit_wcrt_read(const HcAnalysisConfig& cfg,
                                    const AnalysisPlatform& p, PortIndex port,
                                    BeatCount beats);
[[nodiscard]] Cycle audit_wcrt_write(const HcAnalysisConfig& cfg,
                                     const AnalysisPlatform& p, PortIndex port,
                                     BeatCount beats);

/// The analogous bound for the SmartConnect baseline: variable round-robin
/// granularity `g` (worst-case interference g×(N−1) transactions per §V-B)
/// and no equalization (competitor bursts up to `max_competitor_beats`).
[[nodiscard]] Cycle smartconnect_wcrt_read(const AnalysisPlatform& p,
                                           std::uint32_t num_ports,
                                           std::uint32_t granularity,
                                           BeatCount max_competitor_beats,
                                           BeatCount beats);

/// Worst-case cycles needed to serve every port's full budget once:
/// sum_i B_i * S(nominal). The demand side of the feasibility check; also
/// quoted by the `reservation-overcommit` lint rule and embedded in prove
/// certificates.
[[nodiscard]] std::uint64_t reservation_demand(const HcAnalysisConfig& cfg,
                                               const AnalysisPlatform& p);

/// Schedulability-style check for a reservation plan: the budgets of all
/// ports must be servable within one period at worst-case service times
/// (reservation_demand(cfg, p) <= T). Returns true if the plan is feasible.
[[nodiscard]] bool reservation_feasible(const HcAnalysisConfig& cfg,
                                        const AnalysisPlatform& p);

}  // namespace axihc
