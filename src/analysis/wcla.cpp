#include "analysis/wcla.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace axihc {

Cycle service_bound(const AnalysisPlatform& p, BeatCount beats) {
  return p.mem_latency + beats + p.turnaround;
}

Cycle with_refresh(const AnalysisPlatform& p, Cycle span) {
  if (p.refresh_period == 0 || span == 0) return span;
  AXIHC_CHECK_MSG(p.refresh_duration < p.refresh_period,
                  "refresh longer than its period");
  // Fixed-point iteration: refreshes extend the span, which can overlap
  // more refresh intervals. Converges because duration < period.
  Cycle total = span;
  for (int i = 0; i < 64; ++i) {
    const Cycle refreshes = total / p.refresh_period + 1;
    const Cycle next = span + refreshes * p.refresh_duration;
    if (next == total) break;
    total = next;
  }
  return total;
}

BeatCount competitor_unit_beats(const HcAnalysisConfig& cfg) {
  return cfg.nominal_burst != 0 ? cfg.nominal_burst
                                : cfg.max_unequalized_beats;
}

std::uint32_t sub_transaction_count(const HcAnalysisConfig& cfg,
                                    BeatCount beats) {
  AXIHC_CHECK(beats >= 1);
  if (cfg.nominal_burst == 0) return 1;
  return (beats + cfg.nominal_burst - 1) / cfg.nominal_burst;
}

namespace {

/// Interference + own-service core shared by the read and write bounds:
/// time from the request reaching the EXBAR to its last sub-transaction
/// fully served at the memory controller.
Cycle arbitration_and_service_bound(const HcAnalysisConfig& cfg,
                                    const AnalysisPlatform& p,
                                    BeatCount beats) {
  const std::uint32_t subs = sub_transaction_count(cfg, beats);
  const BeatCount own_unit =
      cfg.nominal_burst != 0 ? std::min(beats, cfg.nominal_burst) : beats;
  const Cycle s_comp = service_bound(p, competitor_unit_beats(cfg));
  const Cycle s_own = service_bound(p, own_unit);

  // Fixed-granularity round-robin: between two consecutive grants of this
  // port, every other port is granted at most once, so each own sub pays at
  // most (N-1) competitor units. On top, previously granted but unserved
  // competitor units queue ahead of the first own sub (bounded by the
  // per-port outstanding limit), plus one unit of non-preemptive blocking.
  const std::uint64_t n_minus_1 = cfg.num_ports - 1;
  const std::uint64_t backlog =
      static_cast<std::uint64_t>(cfg.competitor_backlog) * n_minus_1;
  const std::uint64_t interference = backlog + 1 +  // blocking
                                     static_cast<std::uint64_t>(subs) *
                                         n_minus_1;
  return static_cast<Cycle>(interference) * s_comp +
         static_cast<Cycle>(subs) * s_own;
}

/// Reservation supply bound: with budget B per period T and a feasible
/// plan, `subs` sub-transactions complete within ceil(subs/B) periods plus
/// one period of initial phasing (arriving right after budget exhaustion).
Cycle reservation_supply_bound(const HcAnalysisConfig& cfg,
                               PortIndex port, std::uint32_t subs) {
  const std::uint32_t budget = cfg.budgets.at(port);
  AXIHC_CHECK_MSG(budget > 0, "reserved port with zero budget never serves");
  const std::uint64_t periods = (subs + budget - 1) / budget;
  return (periods + 1) * cfg.reservation_period;
}

}  // namespace

std::uint64_t reservation_demand(const HcAnalysisConfig& cfg,
                                 const AnalysisPlatform& p) {
  const Cycle s_nominal = service_bound(p, competitor_unit_beats(cfg));
  std::uint64_t demand = 0;
  for (const std::uint32_t b : cfg.budgets) {
    demand += static_cast<std::uint64_t>(b) * s_nominal;
  }
  return demand;
}

bool reservation_feasible(const HcAnalysisConfig& cfg,
                          const AnalysisPlatform& p) {
  if (cfg.reservation_period == 0) return false;
  AXIHC_CHECK(cfg.budgets.size() == cfg.num_ports);
  return reservation_demand(cfg, p) <= cfg.reservation_period;
}

namespace {

/// Shared body of wcrt_read/wcrt_write once the direction-specific pipeline
/// latency is known.
Cycle wcrt_core(const HcAnalysisConfig& cfg, const AnalysisPlatform& p,
                PortIndex port, BeatCount beats, Cycle pipeline) {
  AXIHC_CHECK(cfg.num_ports >= 1);
  if (cfg.reservation_period != 0) {
    const std::uint32_t subs = sub_transaction_count(cfg, beats);
    if (reservation_feasible(cfg, p)) {
      // With reservation active the request may arrive with the port's OWN
      // budget exhausted (worst-case phasing), so the round-robin bound does
      // not apply; the supply bound is the sound one.
      return pipeline +
             with_refresh(p, reservation_supply_bound(cfg, port, subs) +
                                 service_bound(p, competitor_unit_beats(cfg)));
    }
    if (cfg.budgets.at(port) > 0) {
      // Infeasible plan: a period cannot serve every port's budget, so the
      // round-robin bound alone is UNSOUND for a throttled port (its own
      // budget can gate it past any arbitration-only bound). Compose the
      // supply bound (budget phasing) with the full arbitration-and-service
      // term (competitors are no longer confined to their budgets either).
      return pipeline +
             with_refresh(p, reservation_supply_bound(cfg, port, subs) +
                                 arbitration_and_service_bound(cfg, p, beats));
    }
    // Zero budget under reservation: the port is never served; no finite
    // bound is meaningful, fall through to round-robin for continuity.
  }
  return pipeline +
         with_refresh(p, arbitration_and_service_bound(cfg, p, beats));
}

/// Audit-bound body: reservation on always takes the composite
/// supply + arbitration form (see header for why the live auditor cannot
/// use the idle-own-port wcrt bound directly).
Cycle audit_wcrt_core(const HcAnalysisConfig& cfg, const AnalysisPlatform& p,
                      PortIndex port, BeatCount beats, Cycle pipeline) {
  AXIHC_CHECK(cfg.num_ports >= 1);
  if (cfg.reservation_period != 0 && cfg.budgets.at(port) > 0) {
    const std::uint32_t subs = sub_transaction_count(cfg, beats);
    return pipeline +
           with_refresh(p, reservation_supply_bound(cfg, port, subs) +
                               arbitration_and_service_bound(cfg, p, beats));
  }
  return pipeline +
         with_refresh(p, arbitration_and_service_bound(cfg, p, beats));
}

}  // namespace

Cycle wcrt_read(const HcAnalysisConfig& cfg, const AnalysisPlatform& p,
                PortIndex port, BeatCount beats) {
  return wcrt_core(cfg, p, port, beats, p.ar_latency + p.r_latency);
}

Cycle wcrt_write(const HcAnalysisConfig& cfg, const AnalysisPlatform& p,
                 PortIndex port, BeatCount beats) {
  return wcrt_core(cfg, p, port, beats,
                   p.aw_latency + p.w_latency + p.b_latency);
}

Cycle audit_wcrt_read(const HcAnalysisConfig& cfg, const AnalysisPlatform& p,
                      PortIndex port, BeatCount beats) {
  return audit_wcrt_core(cfg, p, port, beats, p.ar_latency + p.r_latency);
}

Cycle audit_wcrt_write(const HcAnalysisConfig& cfg, const AnalysisPlatform& p,
                       PortIndex port, BeatCount beats) {
  return audit_wcrt_core(cfg, p, port, beats,
                         p.aw_latency + p.w_latency + p.b_latency);
}

Cycle smartconnect_wcrt_read(const AnalysisPlatform& p,
                             std::uint32_t num_ports,
                             std::uint32_t granularity,
                             BeatCount max_competitor_beats,
                             BeatCount beats) {
  AXIHC_CHECK(num_ports >= 1);
  AXIHC_CHECK(granularity >= 1);
  // §V-B: with variable granularity g, a request can be interfered by up to
  // g x (N-1) competitor transactions per round, each of unbounded
  // (unequalized) burst size, plus one unit of non-preemptive blocking.
  const Cycle s_comp = service_bound(p, max_competitor_beats);
  const std::uint64_t interference =
      static_cast<std::uint64_t>(granularity) * (num_ports - 1) + 1;
  return p.ar_latency + p.r_latency +
         with_refresh(p, static_cast<Cycle>(interference) * s_comp +
                             service_bound(p, beats));
}

}  // namespace axihc
