#include "analysis/job_analysis.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace axihc {

std::uint64_t JobProfile::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ph : phases) total += ph.read_bytes + ph.write_bytes;
  return total;
}

JobProfile profile_of(const DnnConfig& cfg) {
  JobProfile job;
  job.ha_burst_beats = cfg.burst_beats;
  for (const auto& layer : cfg.layers) {
    // DnnAccelerator phase structure: load (reads), compute, store (writes).
    // Load and compute are sequential within a layer, so they are separate
    // phases; the store is a third.
    JobPhase load;
    load.read_bytes = layer.weight_bytes + layer.ifmap_bytes;
    JobPhase compute;
    compute.compute_cycles =
        (layer.macs + cfg.macs_per_cycle - 1) / cfg.macs_per_cycle;
    JobPhase store;
    store.write_bytes = layer.ofmap_bytes;
    job.phases.push_back(load);
    job.phases.push_back(compute);
    if (layer.ofmap_bytes > 0) job.phases.push_back(store);
  }
  return job;
}

JobProfile profile_of(const DmaConfig& cfg) {
  JobProfile job;
  job.ha_burst_beats = cfg.burst_beats;
  JobPhase move;
  if (cfg.mode != DmaMode::kWrite) move.read_bytes = cfg.bytes_per_job;
  if (cfg.mode != DmaMode::kRead) move.write_bytes = cfg.bytes_per_job;
  job.phases.push_back(move);
  return job;
}

std::uint64_t subs_for_bytes(const HcAnalysisConfig& cfg,
                             BeatCount ha_burst_beats, std::uint64_t bytes) {
  if (bytes == 0) return 0;
  const BeatCount unit = cfg.nominal_burst != 0
                             ? std::min(ha_burst_beats, cfg.nominal_burst)
                             : ha_burst_beats;
  const std::uint64_t unit_bytes = std::uint64_t{unit} * 8;
  return (bytes + unit_bytes - 1) / unit_bytes;
}

namespace {

/// Worst-case time to retire `subs` sub-transactions of one port, excluding
/// per-transaction pipeline constants (those are added once per phase).
Cycle transfer_bound(const HcAnalysisConfig& cfg, const AnalysisPlatform& p,
                     PortIndex port, std::uint64_t subs) {
  if (subs == 0) return 0;
  const BeatCount own_unit = cfg.nominal_burst != 0
                                 ? cfg.nominal_burst
                                 : cfg.max_unequalized_beats;
  const Cycle s_own = service_bound(p, own_unit);
  const Cycle s_comp = service_bound(p, competitor_unit_beats(cfg));

  if (cfg.reservation_period != 0 && reservation_feasible(cfg, p)) {
    const std::uint32_t budget = cfg.budgets.at(port);
    AXIHC_CHECK_MSG(budget > 0, "reserved port with zero budget");
    const std::uint64_t periods = (subs + budget - 1) / budget;
    // +1 period of initial phasing; feasibility guarantees each window's
    // budgets are servable within the window.
    return with_refresh(p, (periods + 1) * cfg.reservation_period);
  }
  // Round-robin: each own sub pays at most (N-1) competitor units, plus the
  // initial backlog and one blocking unit.
  const std::uint64_t n_minus_1 = cfg.num_ports - 1;
  const std::uint64_t interference =
      std::uint64_t{cfg.competitor_backlog} * n_minus_1 + 1 +
      subs * n_minus_1;
  return with_refresh(p, static_cast<Cycle>(interference) * s_comp +
                             static_cast<Cycle>(subs) * s_own);
}

}  // namespace

Cycle job_wcrt(const HcAnalysisConfig& cfg, const AnalysisPlatform& p,
               PortIndex port, const JobProfile& job) {
  Cycle total = 0;
  for (const auto& phase : job.phases) {
    const std::uint64_t read_subs =
        subs_for_bytes(cfg, job.ha_burst_beats, phase.read_bytes);
    const std::uint64_t write_subs =
        subs_for_bytes(cfg, job.ha_burst_beats, phase.write_bytes);
    // Reads and writes of one phase share the port's budget/arbitration
    // slots in the worst case: bound their sum sequentially (sound; they
    // may overlap in the best case).
    total += transfer_bound(cfg, p, port, read_subs + write_subs);
    if (read_subs > 0) total += p.ar_latency + p.r_latency;
    if (write_subs > 0) total += p.aw_latency + p.w_latency + p.b_latency;
    total += phase.compute_cycles;
  }
  return total;
}

std::uint32_t min_budget_for_deadline(HcAnalysisConfig cfg,
                                      const AnalysisPlatform& p,
                                      PortIndex port, const JobProfile& job,
                                      Cycle deadline) {
  AXIHC_CHECK_MSG(cfg.reservation_period != 0,
                  "budget sizing needs a reservation period");
  AXIHC_CHECK(port < cfg.budgets.size());
  // Monotone in the budget: binary search the smallest feasible value.
  const Cycle s_nominal = service_bound(p, competitor_unit_beats(cfg));
  const auto max_budget =
      static_cast<std::uint32_t>(cfg.reservation_period / s_nominal);
  std::uint32_t lo = 1;
  std::uint32_t hi = max_budget;
  std::uint32_t best = 0;
  while (lo <= hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    cfg.budgets[port] = mid;
    const bool ok = reservation_feasible(cfg, p) &&
                    job_wcrt(cfg, p, port, job) <= deadline;
    if (ok) {
      best = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

}  // namespace axihc
