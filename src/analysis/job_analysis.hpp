// Job-level worst-case response-time analysis: bounds for complete
// acceleration jobs (a DNN inference frame, a DMA block move) composed from
// the transaction-level WCLA.
//
// This is the quantity a system integrator actually certifies against
// ("one GoogleNet frame completes within X ms even while every other HA
// floods the bus"), and the sizing tool for Fig.-5-style reservation
// splits: given a frame deadline, how much budget does the DNN need?
//
// A job is a sequence of phases; each phase moves bytes (reads and/or
// writes, overlapping freely) and then computes for a fixed time — the
// structure of DnnAccelerator and DmaEngine jobs. Bounds assume every other
// port is continuously backlogged (round-robin mode) or budget-capped
// (reservation mode), like the transaction-level bounds they build on.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/wcla.hpp"
#include "common/types.hpp"
#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"

namespace axihc {

/// One phase of an acceleration job.
struct JobPhase {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  Cycle compute_cycles = 0;
};

struct JobProfile {
  std::vector<JobPhase> phases;
  /// The HA's own burst size in beats (bounds the sub-transaction count
  /// together with the nominal burst).
  BeatCount ha_burst_beats = 16;

  [[nodiscard]] std::uint64_t total_bytes() const;
};

/// The bus/compute profile of one DnnAccelerator frame.
[[nodiscard]] JobProfile profile_of(const DnnConfig& cfg);

/// The bus profile of one DmaEngine job.
[[nodiscard]] JobProfile profile_of(const DmaConfig& cfg);

/// Sub-transactions needed to move `bytes` given the HA burst and the
/// equalization nominal.
[[nodiscard]] std::uint64_t subs_for_bytes(const HcAnalysisConfig& cfg,
                                           BeatCount ha_burst_beats,
                                           std::uint64_t bytes);

/// Worst-case completion time of one job issued by `port`, from its first
/// address request to its last response. Sound under the same adversary
/// model as wcrt_read/wcrt_write.
[[nodiscard]] Cycle job_wcrt(const HcAnalysisConfig& cfg,
                             const AnalysisPlatform& p, PortIndex port,
                             const JobProfile& job);

/// Smallest per-period budget that provably meets `deadline` for the job
/// under reservation (period from cfg), or 0 if no feasible budget exists
/// (deadline too tight even with the whole period). Inverse of job_wcrt —
/// the reservation-sizing question Fig. 5 answers empirically.
[[nodiscard]] std::uint32_t min_budget_for_deadline(
    HcAnalysisConfig cfg, const AnalysisPlatform& p, PortIndex port,
    const JobProfile& job, Cycle deadline);

}  // namespace axihc
