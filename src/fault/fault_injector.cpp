#include "fault/fault_injector.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace axihc {

FaultInjector::FaultInjector(std::string name, AxiLink& ha_side,
                             AxiLink& bus_side, const FaultScenario& scenario,
                             PortIndex port)
    : Component(std::move(name)),
      ha_(ha_side),
      bus_(bus_side),
      port_(port),
      seed_(scenario.seed ^ (0x9e3779b97f4a7c15ULL * (port + 1))),
      rng_(seed_) {
  for (const FaultSpec& f : scenario.faults) {
    if (f.port == port_) faults_.push_back(f);
  }
  stats_.effective_seed = seed_;
  ha_.attach_endpoint(*this);
  bus_.attach_endpoint(*this);
}

void FaultInjector::append_digest(StateDigest& d) const {
  d.mix(stats_.ar_stalled);
  d.mix(stats_.aw_stalled);
  d.mix(stats_.w_stalled);
  d.mix(stats_.r_stalled);
  d.mix(stats_.b_stalled);
  d.mix(stats_.w_dropped);
  d.mix(stats_.w_delay_cycles);
  d.mix(stats_.bursts_truncated);
  d.mix(stats_.lens_corrupted);
  d.mix(static_cast<std::uint64_t>(w_bursts_.size()));
  d.mix(static_cast<std::uint64_t>(w_hold_left_));
}

void FaultInjector::reset() {
  rng_.seed(seed_);
  w_bursts_.clear();
  w_hold_left_ = 0;
  stats_ = FaultInjectorStats{};
  stats_.effective_seed = seed_;
}

bool FaultInjector::stalled(FaultKind kind, Cycle now) const {
  // Stall faults ignore `probability`: a hung handshake is hung every cycle.
  for (const FaultSpec& f : faults_) {
    if (f.kind == kind && f.active_at(now)) return true;
  }
  return false;
}

const FaultSpec* FaultInjector::active_spec(FaultKind kind, Cycle now) const {
  for (const FaultSpec& f : faults_) {
    if (f.kind == kind && f.active_at(now)) return &f;
  }
  return nullptr;
}

bool FaultInjector::chance(double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  // 53-bit mantissa trick: identical across standard libraries, unlike
  // uniform_real_distribution.
  const double u = static_cast<double>(rng_() >> 11) * 0x1.0p-53;
  return u < probability;
}

void FaultInjector::forward_ar(Cycle now) {
  if (!ha_.ar.can_pop() || !bus_.ar.can_push()) return;
  if (stalled(FaultKind::kStallAr, now)) {
    ++stats_.ar_stalled;
    return;
  }
  AddrReq req = ha_.ar.pop();
  if (const FaultSpec* f = active_spec(FaultKind::kCorruptLen, now)) {
    if (chance(f->probability)) {
      req.beats = static_cast<BeatCount>(
          std::clamp<std::uint64_t>(f->param, 1, kMaxAxi4BurstBeats));
      ++stats_.lens_corrupted;
    }
  }
  bus_.ar.push(req);
}

void FaultInjector::forward_aw(Cycle now) {
  if (!ha_.aw.can_pop() || !bus_.aw.can_push()) return;
  if (stalled(FaultKind::kStallAw, now)) {
    ++stats_.aw_stalled;
    return;
  }
  AddrReq req = ha_.aw.pop();
  const BeatCount upstream_beats = req.beats;  // what the HA will send on W

  WBurst burst;
  if (const FaultSpec* f = active_spec(FaultKind::kTruncateWrite, now)) {
    if (upstream_beats > 1 && chance(f->probability)) {
      const BeatCount cut = static_cast<BeatCount>(
          std::min<std::uint64_t>(f->param == 0 ? 1 : f->param,
                                  upstream_beats - 1));
      burst.truncate_after = upstream_beats - cut;
    }
  }
  w_bursts_.push_back(burst);

  if (const FaultSpec* f = active_spec(FaultKind::kCorruptLen, now)) {
    if (chance(f->probability)) {
      req.beats = static_cast<BeatCount>(
          std::clamp<std::uint64_t>(f->param, 1, kMaxAxi4BurstBeats));
      ++stats_.lens_corrupted;
    }
  }
  bus_.aw.push(req);
}

void FaultInjector::forward_w(Cycle now) {
  if (!ha_.w.can_pop()) return;
  if (stalled(FaultKind::kStallW, now)) {
    ++stats_.w_stalled;
    return;
  }
  // W beats belong to the oldest forwarded AW; until that AW has been
  // forwarded (e.g. it is being stalled) the data must wait here, exactly
  // like a skid buffer behind a hung address channel.
  if (w_bursts_.empty()) return;
  WBurst& burst = w_bursts_.front();

  if (burst.swallowing) {
    // Past an injected early WLAST: eat the remainder of the upstream burst.
    const WBeat beat = ha_.w.pop();
    if (beat.last) w_bursts_.pop_front();
    return;
  }

  if (w_hold_left_ > 0) {
    --w_hold_left_;
    ++stats_.w_delay_cycles;
    return;
  }
  if (!bus_.w.can_push()) return;

  if (const FaultSpec* f = active_spec(FaultKind::kDropW, now)) {
    if (chance(f->probability)) {
      const WBeat beat = ha_.w.pop();
      ++stats_.w_dropped;
      ++burst.beats_seen;
      if (beat.last) w_bursts_.pop_front();  // burst now short downstream
      return;
    }
  }
  if (const FaultSpec* f = active_spec(FaultKind::kDelayW, now)) {
    if (f->param > 0 && chance(f->probability)) {
      w_hold_left_ = f->param;  // hold the front beat; counted as it waits
      return;
    }
  }

  WBeat beat = ha_.w.pop();
  ++burst.beats_seen;
  const bool upstream_last = beat.last;
  if (burst.truncate_after != 0 && burst.beats_seen == burst.truncate_after &&
      !upstream_last) {
    beat.last = true;  // spurious early WLAST
    ++stats_.bursts_truncated;
    burst.swallowing = true;
    bus_.w.push(beat);
    return;
  }
  bus_.w.push(beat);
  if (upstream_last) w_bursts_.pop_front();
}

void FaultInjector::forward_r(Cycle now) {
  if (!bus_.r.can_pop() || !ha_.r.can_push()) return;
  if (stalled(FaultKind::kStallR, now)) {
    ++stats_.r_stalled;
    return;
  }
  ha_.r.push(bus_.r.pop());
}

void FaultInjector::forward_b(Cycle now) {
  if (!bus_.b.can_pop() || !ha_.b.can_push()) return;
  if (stalled(FaultKind::kStallB, now)) {
    ++stats_.b_stalled;
    return;
  }
  ha_.b.push(bus_.b.pop());
}

void FaultInjector::tick(Cycle now) {
  forward_ar(now);
  forward_aw(now);
  forward_w(now);
  forward_r(now);
  forward_b(now);
}

}  // namespace axihc
