// Fault scenarios: declarative descriptions of misbehaviour to inject into
// an AXI port (see fault_injector.hpp for the component that applies them).
//
// A scenario is a seeded list of fault specs. Each spec names a fault kind,
// the port it applies to, an activation window in cycles, and an optional
// per-event probability so intermittent faults can be modelled
// reproducibly: two runs with the same scenario see the same fault pattern.
//
// The kinds cover the failure modes the HyperConnect's protection unit must
// survive (hung handshakes, lost/late write data, malformed burst lengths);
// memory-side SLVERR windows are configured on the MemoryController
// directly (MemoryControllerConfig::slverr_ranges) and appear here only as
// the "mem_slverr" spelling for config-file parsing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axihc {

enum class FaultKind : std::uint8_t {
  kStallAr,        ///< swallow AR-channel readiness: requests pile up
  kStallAw,        ///< same for AW
  kStallW,         ///< W data stops flowing (hung write stream)
  kStallR,         ///< master stops accepting R beats (RREADY low)
  kStallB,         ///< master stops accepting B responses
  kDropW,          ///< lose W beats (each with `probability`)
  kDelayW,         ///< hold each W beat for `param` extra cycles
  kTruncateWrite,  ///< end W bursts `param` beats early (spurious WLAST)
  kCorruptLen,     ///< rewrite AWLEN/ARLEN to `param` beats
};

struct FaultSpec {
  FaultKind kind = FaultKind::kStallW;
  /// Port the fault applies to (the injector wrapping that port picks it up).
  PortIndex port = 0;
  /// First cycle the fault is active.
  Cycle start = 0;
  /// Active-window length; 0 = permanent (active forever from `start`).
  Cycle duration = 0;
  /// Kind-specific parameter: delay cycles (kDelayW), beats cut
  /// (kTruncateWrite), corrupted burst length (kCorruptLen).
  std::uint64_t param = 0;
  /// Per-event probability in [0,1]: per beat for kDropW/kDelayW, per burst
  /// for kTruncateWrite/kCorruptLen, ignored (always-on) for stalls.
  double probability = 1.0;

  [[nodiscard]] bool active_at(Cycle now) const {
    return now >= start && (duration == 0 || now < start + duration);
  }
};

struct FaultScenario {
  /// Seeds the injectors' RNGs (xor'd with the port index so per-port
  /// streams are independent but reproducible).
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;
};

/// Parses the config-file spelling of a fault kind ("stall_w", "drop_w",
/// "delay_w", "truncate_write", "corrupt_len", ...). Returns nullopt for
/// unknown spellings — including "mem_slverr", which is not an injector
/// fault (system_builder routes it to the memory controller).
[[nodiscard]] std::optional<FaultKind> fault_kind_from_string(
    const std::string& s);

/// Human-readable name of a fault kind (logging / error messages).
[[nodiscard]] const char* fault_kind_name(FaultKind kind);

}  // namespace axihc
