// Fault injector: a pass-through component spliced between a hardware
// accelerator's master port and the interconnect, able to misbehave on
// command.
//
// In the fault-free case it forwards one payload per channel per cycle
// (adding one cycle of latency per channel, like any registered stage).
// When a FaultSpec from its scenario is active it perturbs the traffic:
// stalls a channel's handshake, drops or delays W beats, truncates write
// bursts (spurious early WLAST), or corrupts the advertised burst length.
//
// The injector sits on the *master* side, so from the interconnect's point
// of view the port itself has gone bad — exactly the situation the
// HyperConnect's per-port protection unit must detect, drain, and decouple
// (tests/test_fault_injection.cpp drives the whole loop).
//
// Determinism: each injector derives its RNG from scenario.seed ^ port, so
// a scenario replays identically across runs and per-port fault streams are
// independent.
#pragma once

#include <cstdint>
#include <deque>
#include <random>
#include <string>
#include <vector>

#include "axi/axi.hpp"
#include "fault/scenario.hpp"
#include "sim/component.hpp"

namespace axihc {

/// Event counters of one injector (what it actually did, for assertions).
struct FaultInjectorStats {
  /// The seed this injector's RNG actually ran with (scenario.seed mixed
  /// with the port index). Recorded so any observed fault pattern — e.g. a
  /// failing campaign row — is replayable as a single axihc invocation with
  /// [system] fault_seed set to the scenario seed it derives from.
  std::uint64_t effective_seed = 0;
  std::uint64_t ar_stalled = 0;  // cycles an AR forward was suppressed
  std::uint64_t aw_stalled = 0;
  std::uint64_t w_stalled = 0;
  std::uint64_t r_stalled = 0;
  std::uint64_t b_stalled = 0;
  std::uint64_t w_dropped = 0;       // beats lost
  std::uint64_t w_delay_cycles = 0;  // extra cycles W beats were held
  std::uint64_t bursts_truncated = 0;
  std::uint64_t lens_corrupted = 0;
};

class FaultInjector final : public Component {
 public:
  /// Forwards between `ha_side` (the accelerator masters this link) and
  /// `bus_side` (connected to the interconnect port), applying the faults
  /// of `scenario` whose `port` field equals `port`.
  FaultInjector(std::string name, AxiLink& ha_side, AxiLink& bus_side,
                const FaultScenario& scenario, PortIndex port);

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    if (ha_.ar.can_pop() || ha_.aw.can_pop() || ha_.w.can_pop() ||
        bus_.r.can_pop() || bus_.b.can_pop()) {
      return now;
    }
    // Mid-burst W bookkeeping or a held beat still ticking down.
    if (!w_bursts_.empty() || w_hold_left_ > 0) return now;
    // Any fault spec may become active at its window edge; conservative
    // (fault scenarios are short and benches run without them).
    if (!faults_.empty()) return now;
    return kNoCycle;
  }

  [[nodiscard]] const FaultInjectorStats& stats() const { return stats_; }
  [[nodiscard]] PortIndex port() const { return port_; }

  /// Channel-pure: forwards between its two links; the RNG is private.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  void append_digest(StateDigest& d) const override;

 private:
  /// Tracks one forwarded write burst so W faults can be applied per burst.
  struct WBurst {
    BeatCount beats_seen = 0;      // upstream beats consumed so far
    BeatCount truncate_after = 0;  // 0 = no truncation for this burst
    bool swallowing = false;       // past the forced WLAST: eat the rest
  };

  [[nodiscard]] bool stalled(FaultKind kind, Cycle now) const;
  /// First active spec of `kind` this cycle, or nullptr.
  [[nodiscard]] const FaultSpec* active_spec(FaultKind kind, Cycle now) const;
  [[nodiscard]] bool chance(double probability);

  void forward_ar(Cycle now);
  void forward_aw(Cycle now);
  void forward_w(Cycle now);
  void forward_r(Cycle now);
  void forward_b(Cycle now);

  AxiLink& ha_;
  AxiLink& bus_;
  std::vector<FaultSpec> faults_;  // specs for this port only
  PortIndex port_;
  std::uint64_t seed_;
  std::mt19937_64 rng_;

  std::deque<WBurst> w_bursts_;  // one per forwarded AW with W data pending
  Cycle w_hold_left_ = 0;        // kDelayW: cycles the front W beat waits

  FaultInjectorStats stats_;
};

}  // namespace axihc
