#include "fault/scenario.hpp"

namespace axihc {

std::optional<FaultKind> fault_kind_from_string(const std::string& s) {
  if (s == "stall_ar") return FaultKind::kStallAr;
  if (s == "stall_aw") return FaultKind::kStallAw;
  if (s == "stall_w") return FaultKind::kStallW;
  if (s == "stall_r") return FaultKind::kStallR;
  if (s == "stall_b") return FaultKind::kStallB;
  if (s == "drop_w") return FaultKind::kDropW;
  if (s == "delay_w") return FaultKind::kDelayW;
  if (s == "truncate_write") return FaultKind::kTruncateWrite;
  if (s == "corrupt_len") return FaultKind::kCorruptLen;
  return std::nullopt;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStallAr: return "stall_ar";
    case FaultKind::kStallAw: return "stall_aw";
    case FaultKind::kStallW: return "stall_w";
    case FaultKind::kStallR: return "stall_r";
    case FaultKind::kStallB: return "stall_b";
    case FaultKind::kDropW: return "drop_w";
    case FaultKind::kDelayW: return "delay_w";
    case FaultKind::kTruncateWrite: return "truncate_write";
    case FaultKind::kCorruptLen: return "corrupt_len";
  }
  return "?";
}

}  // namespace axihc
