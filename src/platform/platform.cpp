#include "platform/platform.hpp"

namespace axihc {

AnalysisPlatform Platform::analysis() const {
  AnalysisPlatform p;
  p.mem_latency = mem.row_miss_latency;
  p.turnaround = mem.turnaround;
  return p;
}

Platform zcu102_platform() {
  Platform p;
  p.name = "ZCU102 (Zynq UltraScale+)";
  p.clock_hz = 150e6;
  p.mem.row_hit_latency = 10;
  p.mem.row_miss_latency = 24;
  p.mem.banks = 16;       // DDR4: 16 banks (4 groups x 4)
  p.mem.row_bytes_log2 = 11;
  p.mem.turnaround = 1;
  p.device = zcu102();
  return p;
}

Platform zynq7020_platform() {
  Platform p;
  p.name = "Zynq Z-7020";
  p.clock_hz = 100e6;
  p.mem.row_hit_latency = 14;   // DDR3 path, slower relative to fabric
  p.mem.row_miss_latency = 34;
  p.mem.banks = 8;
  p.mem.row_bytes_log2 = 11;
  p.mem.turnaround = 2;
  p.device = zynq7020();
  return p;
}

}  // namespace axihc
