// Platform presets for the two FPGA SoCs the paper evaluates (§VI-A):
// the Zynq UltraScale+ ZCU102 and the Zynq-7000 Z-7020.
//
// A preset bundles the fabric clock, the memory-path timing calibration,
// the device resource budget and the matching analysis platform, so benches
// and applications can select a platform in one line. The paper reports
// "similar results" on both; the Z-7020 preset has a slower clock and a
// slower DDR3 path, so absolute rates drop while every comparison shape is
// preserved — which this library's tests verify.
#pragma once

#include <string>

#include "analysis/wcla.hpp"
#include "mem/memory_controller.hpp"
#include "resources/resources.hpp"
#include "stats/stats.hpp"

namespace axihc {

struct Platform {
  std::string name;
  /// FPGA-fabric clock feeding the interconnect and HAs.
  double clock_hz = 150e6;
  /// Memory-path timing (FPGA-PS interface + DDR controller + DRAM).
  MemoryControllerConfig mem{};
  /// Device resource budget (for Table-I style utilization).
  DeviceBudget device{};

  [[nodiscard]] RateMeter rate_meter() const { return RateMeter(clock_hz); }

  /// Analysis platform matching this preset's memory timing (HyperConnect
  /// pipeline latencies).
  [[nodiscard]] AnalysisPlatform analysis() const;
};

/// ZCU102 (XCZU9EG): 150 MHz fabric, DDR4-2666 behind the FPGA-PS port.
[[nodiscard]] Platform zcu102_platform();

/// Zynq-7000 Z-7020: 100 MHz fabric, DDR3-1066; smaller device.
[[nodiscard]] Platform zynq7020_platform();

}  // namespace axihc
