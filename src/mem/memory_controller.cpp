#include "mem/memory_controller.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

MemoryController::MemoryController(std::string name, AxiLink& link,
                                   BackingStore& store,
                                   MemoryControllerConfig cfg)
    : Component(std::move(name)),
      link_(link),
      store_(store),
      cfg_(cfg),
      open_row_(cfg.banks, kNoRow) {
  AXIHC_CHECK(cfg_.banks > 0);
  link_.attach_endpoint(*this);
}

void MemoryController::append_digest(StateDigest& d) const {
  d.mix(reads_served_);
  d.mix(writes_served_);
  d.mix(beats_served_);
  d.mix(busy_cycles_);
  d.mix(row_hits_);
  d.mix(row_misses_);
  d.mix(reordered_);
  d.mix(refreshes_);
  d.mix(decode_errors_);
  d.mix(slv_errors_);
  d.mix(static_cast<std::uint64_t>(queue_.size()));
  d.mix(static_cast<std::uint64_t>(phase_));
  d.mix(static_cast<std::uint64_t>(wait_left_));
  d.mix(beats_left_);
}

void MemoryController::register_metrics(MetricsRegistry& reg) {
  reg.add_gauge(name() + ".queue_depth",
                [this] { return static_cast<double>(queue_.size()); });
  reg.add_counter(name() + ".reads_served", &reads_served_);
  reg.add_counter(name() + ".writes_served", &writes_served_);
  reg.add_counter(name() + ".beats_served", &beats_served_);
  reg.add_counter(name() + ".busy_cycles", &busy_cycles_);
  reg.add_counter(name() + ".row_hits", &row_hits_);
  reg.add_counter(name() + ".row_misses", &row_misses_);
  reg.add_counter(name() + ".reordered", &reordered_);
  reg.add_counter(name() + ".refreshes", &refreshes_);
  reg.add_counter(name() + ".decode_errors", &decode_errors_);
  reg.add_counter(name() + ".slv_errors", &slv_errors_);
}

void MemoryController::reset() {
  queue_.clear();
  phase_ = Phase::kIdle;
  current_resp_ = Resp::kOkay;
  wait_left_ = 0;
  beats_left_ = 0;
  next_beat_addr_ = 0;
  stream_index_ = 0;
  reordered_ = 0;
  open_row_.assign(cfg_.banks, kNoRow);
  reads_served_ = writes_served_ = beats_served_ = 0;
  busy_cycles_ = 0;
  row_hits_ = row_misses_ = 0;
  refreshes_ = 0;
  decode_errors_ = slv_errors_ = 0;
}

Resp MemoryController::resolve_resp(const AddrReq& req) const {
  const std::uint64_t span = burst_end(req) - req.addr;
  if (!cfg_.mapped_ranges.empty()) {
    bool mapped = false;
    for (const AddrRange& r : cfg_.mapped_ranges) {
      if (r.contains_span(req.addr, span)) {
        mapped = true;
        break;
      }
    }
    // DECERR: no slave decodes (all of) this burst. Bursts never cross a
    // 4 KiB boundary, so partial decode only happens at a range edge.
    if (!mapped) return Resp::kDecErr;
  }
  for (const AddrRange& r : cfg_.slverr_ranges) {
    if (r.overlaps(req.addr, span)) return Resp::kSlvErr;
  }
  return Resp::kOkay;
}

Cycle MemoryController::access_latency(Addr addr) {
  const std::uint64_t row = addr >> cfg_.row_bytes_log2;
  const std::uint64_t bank = row % cfg_.banks;
  if (open_row_[bank] == row) {
    ++row_hits_;
    return cfg_.row_hit_latency;
  }
  open_row_[bank] = row;
  ++row_misses_;
  return cfg_.row_miss_latency;
}

bool MemoryController::would_hit(Addr addr) const {
  const std::uint64_t row = addr >> cfg_.row_bytes_log2;
  const std::uint64_t bank = row % cfg_.banks;
  return open_row_[bank] == row;
}

void MemoryController::accept_new_requests() {
  // In-order merge of the two address channels; AR is checked first, so a
  // read and a write arriving the same cycle enqueue read-first
  // (deterministic tie-break, documented behaviour).
  if (link_.ar.can_pop()) queue_.push_back({false, link_.ar.pop(), {}});
  if (link_.aw.can_pop()) queue_.push_back({true, link_.aw.pop(), {}});
}

void MemoryController::buffer_write_data() {
  // kFrFcfs: drain one W beat per cycle into the oldest incomplete write
  // buffer (W data arrives in AW order by AXI rule).
  if (!link_.w.can_pop()) return;
  for (auto& cmd : queue_) {
    if (!cmd.is_write || cmd.data.size() == cmd.req.beats) continue;
    const WBeat beat = link_.w.pop();
    cmd.data.push_back(beat);
    if (cmd.data.size() == cmd.req.beats) {
      AXIHC_CHECK_MSG(beat.last, name() << ": W burst longer than AW said");
    } else {
      AXIHC_CHECK_MSG(!beat.last, name() << ": early WLAST");
    }
    return;
  }
  // No queued write is missing data; leave the beat for a not-yet-arrived
  // AW (it stays in the channel).
}

bool MemoryController::eligible(std::size_t index) const {
  const Command& cmd = queue_[index];
  // Writes need their data buffered before they can execute out of order.
  if (cmd.is_write && cmd.data.size() != cmd.req.beats) return false;
  // AXI per-ID ordering: a command must not overtake an older command with
  // the same (masked) ID. With the HyperConnect's ID-extension mode the
  // mask selects the port bits, so per-source-port order is preserved.
  const TxnId key = cmd.req.id & cfg_.id_order_mask;
  for (std::size_t i = 0; i < index; ++i) {
    if ((queue_[i].req.id & cfg_.id_order_mask) == key) return false;
  }
  // B responses must also not overtake for the same ID; covered above.
  return true;
}

std::size_t MemoryController::pick_next() const {
  // FR-FCFS: oldest eligible row-hit first, else oldest eligible.
  std::size_t first_eligible = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (!eligible(i)) continue;
    if (first_eligible == queue_.size()) first_eligible = i;
    if (would_hit(queue_[i].req.addr)) return i;
  }
  return first_eligible;
}

void MemoryController::start_next_command() {
  if (queue_.empty()) return;
  std::size_t index = 0;
  if (cfg_.scheduling == MemScheduling::kFrFcfs) {
    index = pick_next();
    if (index == queue_.size()) return;  // nothing eligible yet
    if (index != 0) ++reordered_;
  }
  current_ = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  current_resp_ = resolve_resp(current_.req);
  if (current_resp_ == Resp::kDecErr) {
    ++decode_errors_;
    if (tracing()) trace_->record(now_, name(), "decerr");
  }
  if (current_resp_ == Resp::kSlvErr) {
    ++slv_errors_;
    if (tracing()) trace_->record(now_, name(), "slverr");
  }
  wait_left_ = access_latency(current_.req.addr);
  beats_left_ = current_.req.beats;
  next_beat_addr_ = current_.req.addr;
  stream_index_ = 0;
  phase_ = Phase::kLatency;
  if (audit_ != nullptr && audit_->enabled())
    audit_->on_mem_start(current_.is_write, now_);
}

Cycle MemoryController::next_activity(Cycle now) const {
  // Pending input on any slave channel needs accepting/buffering.
  if (link_.ar.can_pop() || link_.aw.can_pop() || link_.w.can_pop()) {
    return now;
  }
  // Mid-transaction (or commands queued): every tick counts busy_cycles_
  // and advances the phase machine — conservative through stall windows.
  if (phase_ != Phase::kIdle || !queue_.empty()) return now;
  // Fully idle. The only self-scheduled event is the refresh boundary,
  // which closes all open rows even with no traffic.
  if (cfg_.refresh_period != 0) {
    const Cycle p = cfg_.refresh_period;
    return now % p == 0 ? now : (now / p + 1) * p;
  }
  return kNoCycle;
}

void MemoryController::tick(Cycle now) {
  now_ = now;
  accept_new_requests();
  if (cfg_.scheduling == MemScheduling::kFrFcfs) buffer_write_data();

  // PS-side interference window: the controller is busy with PS masters.
  if (cfg_.ps_stall_period != 0 &&
      (now % cfg_.ps_stall_period) < cfg_.ps_stall_length) {
    return;
  }
  // DRAM refresh window (tREFI/tRFC): the device is unavailable. Refresh
  // also closes all open rows (precharge-all).
  if (cfg_.refresh_period != 0 &&
      (now % cfg_.refresh_period) < cfg_.refresh_duration) {
    if (now % cfg_.refresh_period == 0) {
      open_row_.assign(cfg_.banks, kNoRow);
      ++refreshes_;
      if (tracing()) trace_->record(now, name(), "refresh");
    }
    return;
  }

  if (phase_ != Phase::kIdle) ++busy_cycles_;

  switch (phase_) {
    case Phase::kIdle:
      start_next_command();
      break;

    case Phase::kLatency:
      if (wait_left_ > 0) {
        --wait_left_;
        break;
      }
      phase_ = current_.is_write ? Phase::kStreamWrite : Phase::kStreamRead;
      [[fallthrough]];

    case Phase::kStreamRead:
    case Phase::kStreamWrite: {
      // Error transactions (DECERR decode miss / SLVERR window) keep their
      // timing but never touch the backing store; every R beat and the B
      // response carry the resolved error code.
      if (phase_ == Phase::kStreamRead) {
        if (!link_.r.can_push()) break;  // backpressure from the fabric
        RBeat beat;
        beat.id = current_.req.id;
        beat.data =
            current_resp_ == Resp::kOkay ? store_.read_word(next_beat_addr_)
                                         : 0;
        beat.last = beats_left_ == 1;
        beat.resp = current_resp_;
        link_.r.push(beat);
      } else if (cfg_.scheduling == MemScheduling::kFrFcfs) {
        // Data was pre-buffered; stream one beat per cycle from the buffer.
        const bool final_beat = beats_left_ == 1;
        if (final_beat && !link_.b.can_push()) break;
        const WBeat& beat = current_.data[stream_index_++];
        if (current_resp_ == Resp::kOkay) {
          store_.write_word(next_beat_addr_, beat.data, beat.strb);
        }
        if (final_beat) link_.b.push({current_.req.id, current_resp_});
      } else {
        if (!link_.w.can_pop()) break;  // W data not here yet
        const bool final_beat = beats_left_ == 1;
        if (final_beat && !link_.b.can_push()) break;  // hold last beat for B
        const WBeat beat = link_.w.pop();
        if (current_resp_ == Resp::kOkay) {
          store_.write_word(next_beat_addr_, beat.data, beat.strb);
        }
        if (final_beat) {
          AXIHC_CHECK_MSG(beat.last, "W burst longer than AW advertised");
          link_.b.push({current_.req.id, current_resp_});
        }
      }
      ++beats_served_;
      if (current_.req.burst != BurstType::kFixed) {
        next_beat_addr_ += std::uint64_t{1} << current_.req.size_log2;
      }
      --beats_left_;
      if (beats_left_ == 0) {
        if (current_.is_write) {
          ++writes_served_;
        } else {
          ++reads_served_;
        }
        wait_left_ = cfg_.turnaround;
        phase_ = Phase::kTurnaround;
        if (audit_ != nullptr && audit_->enabled()) audit_->on_mem_done(now_);
      }
      break;
    }

    case Phase::kTurnaround:
      if (wait_left_ > 0) {
        --wait_left_;
        break;
      }
      phase_ = Phase::kIdle;
      start_next_command();
      break;
  }
}

}  // namespace axihc
