// Cycle-level model of the PS-side memory path: FPGA-PS slave interface +
// DRAM controller + DRAM.
//
// Behavioural contract (matches the platforms the paper targets, UG585/UG1085):
//  * transactions are served strictly in order of arrival at the slave port
//    (no out-of-order completion — the reason HyperConnect does not support
//    it either, §V-A "Compatibility");
//  * a transaction pays a first-word latency (row hit or row miss, tracked
//    per bank), then streams one data beat per cycle;
//  * read data is returned on R in AR order; a write consumes its W beats at
//    one per cycle and acknowledges with a single B response.
//
// An optional periodic stall models interference from PS-side masters
// (CPU/peripherals sharing the DDR controller); it is off by default.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/axi.hpp"
#include "common/types.hpp"
#include "mem/backing_store.hpp"
#include "obs/audit_hooks.hpp"
#include "obs/metrics.hpp"
#include "sim/component.hpp"
#include "sim/trace.hpp"

namespace axihc {

/// Command scheduling policy.
///  * kInOrder — strict arrival order, as in the Zynq-7000/UltraScale+
///    controllers the paper targets (§V-A "Compatibility").
///  * kFrFcfs — first-ready, first-come-first-served: row hits may overtake
///    older row misses. Models a future platform with out-of-order
///    completion (the paper's future-work scenario). Per-ID order is
///    preserved (AXI requirement) and writes become eligible only once all
///    their W data is buffered.
enum class MemScheduling { kInOrder, kFrFcfs };

struct MemoryControllerConfig {
  MemScheduling scheduling = MemScheduling::kInOrder;
  /// kFrFcfs: two commands whose (id & id_order_mask) match must stay in
  /// order. Full-ID by default; with the HyperConnect's ID-extension mode
  /// use 0xFFFF0000 so per-source-port order is preserved while different
  /// ports may be reordered.
  TxnId id_order_mask = ~TxnId{0};
  /// First-word latency when the access hits the open row of its bank.
  Cycle row_hit_latency = 10;
  /// First-word latency on a row miss (precharge + activate + CAS).
  Cycle row_miss_latency = 24;
  /// Number of DRAM banks tracked for the open-row model.
  std::uint32_t banks = 8;
  /// log2 of the row size in bytes (2 KiB rows by default).
  std::uint32_t row_bytes_log2 = 11;
  /// Extra cycles between the last beat of a transaction and the start of
  /// the next one (bus turnaround / controller bookkeeping).
  Cycle turnaround = 1;
  /// If nonzero: every `ps_stall_period` cycles the controller is blocked
  /// for `ps_stall_length` cycles (PS-side traffic interference model).
  Cycle ps_stall_period = 0;
  Cycle ps_stall_length = 0;
  /// DRAM refresh: every `refresh_period` cycles (tREFI) the device is
  /// unavailable for `refresh_duration` cycles (tRFC). 0 disables refresh
  /// (the default, so calibrated baselines are undisturbed). At DDR4-speed
  /// numbers on a 150 MHz fabric: tREFI ~ 1170 cycles, tRFC ~ 53 cycles.
  Cycle refresh_period = 0;
  Cycle refresh_duration = 0;
  /// Address decode map. Empty = the whole address space is mapped
  /// (back-compatible default). Otherwise a burst not entirely inside one
  /// of these ranges gets DECERR (timing as usual, store untouched).
  std::vector<AddrRange> mapped_ranges;
  /// Error-synthesizing windows (fault injection / broken-slave model): a
  /// burst overlapping any of these ranges gets SLVERR.
  std::vector<AddrRange> slverr_ranges;
};

class MemoryController final : public Component {
 public:
  /// Serves AXI traffic arriving on the slave side of `link`, reading and
  /// writing `store`. Both are borrowed and must outlive the controller.
  MemoryController(std::string name, AxiLink& link, BackingStore& store,
                   MemoryControllerConfig cfg = {});

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;

  [[nodiscard]] std::uint64_t reads_served() const { return reads_served_; }
  [[nodiscard]] std::uint64_t writes_served() const { return writes_served_; }
  [[nodiscard]] std::uint64_t beats_served() const { return beats_served_; }
  [[nodiscard]] std::uint64_t busy_cycles() const { return busy_cycles_; }
  [[nodiscard]] std::uint64_t row_hits() const { return row_hits_; }
  [[nodiscard]] std::uint64_t row_misses() const { return row_misses_; }

  [[nodiscard]] const MemoryControllerConfig& config() const { return cfg_; }

  /// Transactions that overtook an older one (kFrFcfs only).
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }

  /// Refresh windows entered so far.
  [[nodiscard]] std::uint64_t refreshes() const { return refreshes_; }

  /// Transactions answered with DECERR (address-decode miss).
  [[nodiscard]] std::uint64_t decode_errors() const { return decode_errors_; }
  /// Transactions answered with SLVERR (error-synthesizing window).
  [[nodiscard]] std::uint64_t slv_errors() const { return slv_errors_; }

  /// Observability: refresh windows and error responses become trace
  /// instants. nullptr (the default) disables the hooks.
  void set_trace(EventTrace* trace) { trace_ = trace; }

  /// Latency auditor hooks: command service start/done. Only meaningful
  /// with in-order scheduling (the auditor matches commands positionally;
  /// FR-FCFS reordering breaks that, so the wiring layer does not attach
  /// the auditor to FR-FCFS controllers). nullptr (the default) disables.
  void set_latency_audit(LatencyAuditHooks* audit) { audit_ = audit; }

  /// Registers queue depth, served/row-hit/row-miss counters etc. with `reg`.
  void register_metrics(MetricsRegistry& reg);

  /// Channel-pure: touches only its link, its backing store (private to
  /// this controller) and its own registers.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  void append_digest(StateDigest& d) const override;

 private:
  struct Command {
    bool is_write = false;
    AddrReq req;
    /// kFrFcfs: buffered write data (write eligible once complete).
    std::vector<WBeat> data;
  };

  enum class Phase { kIdle, kLatency, kStreamRead, kStreamWrite, kTurnaround };

  /// Looks up the open-row state for `addr` and returns the first-word
  /// latency, updating the open row.
  Cycle access_latency(Addr addr);

  /// True if the open-row state says `addr` would be a row hit (no update).
  [[nodiscard]] bool would_hit(Addr addr) const;

  void accept_new_requests();
  void buffer_write_data();
  [[nodiscard]] bool eligible(std::size_t index) const;
  [[nodiscard]] std::size_t pick_next() const;
  void start_next_command();
  /// Address-decode + error-window resolution for a whole burst.
  [[nodiscard]] Resp resolve_resp(const AddrReq& req) const;

  AxiLink& link_;
  BackingStore& store_;
  MemoryControllerConfig cfg_;

  std::deque<Command> queue_;
  Phase phase_ = Phase::kIdle;
  Command current_{};
  Resp current_resp_ = Resp::kOkay;
  Cycle wait_left_ = 0;
  BeatCount beats_left_ = 0;
  Addr next_beat_addr_ = 0;
  std::size_t stream_index_ = 0;  // kFrFcfs: beats consumed from the buffer
  std::uint64_t reordered_ = 0;
  std::uint64_t refreshes_ = 0;

  std::vector<std::uint64_t> open_row_;  // per bank; kNoRow if none
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

  std::uint64_t reads_served_ = 0;
  std::uint64_t writes_served_ = 0;
  std::uint64_t beats_served_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t slv_errors_ = 0;

  [[nodiscard]] bool tracing() const {
    return trace_ != nullptr && trace_->enabled();
  }
  EventTrace* trace_ = nullptr;
  LatencyAuditHooks* audit_ = nullptr;
  Cycle now_ = 0;  // tick timestamp, for hooks below start_next_command
};

}  // namespace axihc
