#include "mem/dual_port_controller.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace axihc {

DualPortMemoryController::DualPortMemoryController(std::string name,
                                                   AxiLink& ps_link,
                                                   AxiLink& fpga_link,
                                                   BackingStore& store,
                                                   DualPortConfig cfg)
    : Component(std::move(name)),
      ps_link_(ps_link),
      fpga_link_(fpga_link),
      store_(store),
      cfg_(cfg),
      open_row_(cfg.banks, kNoRow) {
  AXIHC_CHECK(cfg_.banks > 0);
  ps_link_.attach_endpoint(*this);
  fpga_link_.attach_endpoint(*this);
}

void DualPortMemoryController::reset() {
  queue_.clear();
  busy_ = false;
  wait_left_ = 0;
  beats_left_ = 0;
  next_beat_addr_ = 0;
  streaming_ = false;
  turnaround_ = false;
  open_row_.assign(cfg_.banks, kNoRow);
  ps_served_ = 0;
  fpga_served_ = 0;
}

Cycle DualPortMemoryController::access_latency(Addr addr) {
  const std::uint64_t row = addr >> cfg_.row_bytes_log2;
  const std::uint64_t bank = row % cfg_.banks;
  if (open_row_[bank] == row) return cfg_.row_hit_latency;
  open_row_[bank] = row;
  return cfg_.row_miss_latency;
}

void DualPortMemoryController::accept_from(AxiLink& link, Source source) {
  if (link.ar.can_pop()) queue_.push_back({source, false, link.ar.pop()});
  if (link.aw.can_pop()) queue_.push_back({source, true, link.aw.pop()});
}

void DualPortMemoryController::start_next_command() {
  if (queue_.empty()) return;
  std::size_t index = 0;
  if (cfg_.ps_priority) {
    // Oldest PS command first; fall back to the overall oldest.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i].source == Source::kPs) {
        index = i;
        break;
      }
    }
  }
  current_ = queue_[index];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  wait_left_ = access_latency(current_.req.addr);
  beats_left_ = current_.req.beats;
  next_beat_addr_ = current_.req.addr;
  busy_ = true;
  streaming_ = false;
  turnaround_ = false;
}

void DualPortMemoryController::tick(Cycle) {
  // PS port is polled first: same-cycle arrivals from both ports enqueue
  // PS-first (deterministic tie-break).
  accept_from(ps_link_, Source::kPs);
  accept_from(fpga_link_, Source::kFpga);

  if (!busy_) {
    start_next_command();
    return;
  }

  if (turnaround_) {
    if (wait_left_ > 0) {
      --wait_left_;
      return;
    }
    busy_ = false;
    start_next_command();
    return;
  }

  if (!streaming_) {
    if (wait_left_ > 0) {
      --wait_left_;
      return;
    }
    streaming_ = true;
  }

  AxiLink& link = link_of(current_.source);
  if (!current_.is_write) {
    if (!link.r.can_push()) return;
    RBeat beat;
    beat.id = current_.req.id;
    beat.data = store_.read_word(next_beat_addr_);
    beat.last = beats_left_ == 1;
    link.r.push(beat);
  } else {
    if (!link.w.can_pop()) return;
    const bool final_beat = beats_left_ == 1;
    if (final_beat && !link.b.can_push()) return;
    const WBeat beat = link.w.pop();
    store_.write_word(next_beat_addr_, beat.data, beat.strb);
    if (final_beat) {
      AXIHC_CHECK_MSG(beat.last, name() << ": W burst longer than AW said");
      link.b.push({current_.req.id, Resp::kOkay});
    }
  }
  if (current_.req.burst != BurstType::kFixed) {
    next_beat_addr_ += std::uint64_t{1} << current_.req.size_log2;
  }
  --beats_left_;
  if (beats_left_ == 0) {
    (current_.source == Source::kPs ? ps_served_ : fpga_served_) += 1;
    wait_left_ = cfg_.turnaround;
    turnaround_ = true;
  }
}

}  // namespace axihc
