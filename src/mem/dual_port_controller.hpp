// Dual-port memory controller: the shared DDR controller as the PS actually
// exposes it — one port for PS masters (CPU cores, peripherals) and one for
// the FPGA fabric (the FPGA-PS interface).
//
// This is the substrate for the paper's §V-A remark that bandwidth
// reservation also serves to control "the overall memory traffic coming
// from the FPGA fabric directed to the shared memory subsystem (which can
// delay the execution of software running on the processors of the PS)":
// with both ports contending for the same device, throttling the FPGA side
// at the HyperConnect visibly protects CPU memory latency
// (bench/ablation_cpu_protection).
//
// Service model matches MemoryController (first-word latency from the
// open-row state, one beat per cycle, turnaround); arbitration between the
// ports is arrival-order FIFO, or PS-priority when `ps_priority` is set
// (the Zynq DDRC's default port weighting favours the PS).
#pragma once

#include <cstdint>
#include <deque>

#include "axi/axi.hpp"
#include "common/types.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/component.hpp"

namespace axihc {

struct DualPortConfig {
  /// Shared device timing (same fields as the single-port model).
  Cycle row_hit_latency = 10;
  Cycle row_miss_latency = 24;
  std::uint32_t banks = 8;
  std::uint32_t row_bytes_log2 = 11;
  Cycle turnaround = 1;
  /// If true, queued PS commands are served before queued FPGA commands
  /// (non-preemptively).
  bool ps_priority = true;
};

class DualPortMemoryController final : public Component {
 public:
  DualPortMemoryController(std::string name, AxiLink& ps_link,
                           AxiLink& fpga_link, BackingStore& store,
                           DualPortConfig cfg = {});

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    if (ps_link_.ar.can_pop() || ps_link_.aw.can_pop() ||
        ps_link_.w.can_pop() || fpga_link_.ar.can_pop() ||
        fpga_link_.aw.can_pop() || fpga_link_.w.can_pop()) {
      return now;
    }
    return (busy_ || !queue_.empty()) ? now : kNoCycle;
  }

  [[nodiscard]] std::uint64_t ps_transactions() const { return ps_served_; }
  [[nodiscard]] std::uint64_t fpga_transactions() const {
    return fpga_served_;
  }

  /// Channel-pure: touches only its two links, its store and its registers.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  void append_digest(StateDigest& d) const override {
    d.mix(ps_served_);
    d.mix(fpga_served_);
    d.mix(static_cast<std::uint64_t>(queue_.size()));
    d.mix(static_cast<std::uint64_t>(busy_));
    d.mix(static_cast<std::uint64_t>(wait_left_));
    d.mix(beats_left_);
  }

 private:
  enum class Source : std::uint8_t { kPs, kFpga };

  struct Command {
    Source source = Source::kPs;
    bool is_write = false;
    AddrReq req;
  };

  [[nodiscard]] AxiLink& link_of(Source s) {
    return s == Source::kPs ? ps_link_ : fpga_link_;
  }
  Cycle access_latency(Addr addr);
  void accept_from(AxiLink& link, Source source);
  void start_next_command();

  AxiLink& ps_link_;
  AxiLink& fpga_link_;
  BackingStore& store_;
  DualPortConfig cfg_;

  std::deque<Command> queue_;
  bool busy_ = false;
  Command current_{};
  Cycle wait_left_ = 0;
  BeatCount beats_left_ = 0;
  Addr next_beat_addr_ = 0;
  bool streaming_ = false;
  bool turnaround_ = false;

  std::vector<std::uint64_t> open_row_;
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

  std::uint64_t ps_served_ = 0;
  std::uint64_t fpga_served_ = 0;
};

}  // namespace axihc
