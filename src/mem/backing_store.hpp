// Sparse word-addressed memory contents. Functional only — all timing lives
// in MemoryController. Sparse so 4 MB-scale DMA workloads don't allocate
// 4 MB per test.
//
// Storage is paged: 4 KiB pages in a hash map, fronted by a one-entry
// last-page cache. DMA traffic is overwhelmingly sequential, so almost every
// access hits the cache and costs an index compare plus an array load — the
// per-word hash probe (and its rehashing) of a flat word map was a measurable
// slice of the whole-system profile. Each page carries a written-word bitmask
// so words_written() still counts distinct words exactly, not pages.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hpp"

namespace axihc {

class BackingStore {
 public:
  /// Reads the 64-bit word containing `addr` (which is rounded down to an
  /// 8-byte boundary). Unwritten memory reads as zero.
  [[nodiscard]] std::uint64_t read_word(Addr addr) const;

  /// Writes the 64-bit word containing `addr`, honouring the byte-enable
  /// strobe `strb` (bit i enables byte i of the word).
  void write_word(Addr addr, std::uint64_t data, std::uint8_t strb = 0xff);

  /// Number of distinct words ever written (test helper). A write with an
  /// all-zero strobe still marks its word written, matching the historical
  /// flat-map behaviour.
  [[nodiscard]] std::size_t words_written() const { return words_written_; }

  void clear();

 private:
  static constexpr Addr kPageWords = 512;  // 4 KiB of data per page

  struct Page {
    std::uint64_t data[kPageWords] = {};
    std::uint64_t written[kPageWords / 64] = {};  // distinct-write bitmask
  };

  static Addr word_index(Addr addr) { return addr >> 3; }

  /// Cache-through page lookup; nullptr when the page was never written.
  Page* find_page(Addr page_idx) const;
  /// find_page, allocating a zeroed page on miss.
  Page& touch_page(Addr page_idx);

  std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
  // Last-page cache (mutable: read_word is logically const). The sentinel
  // index is unreachable — real page indices fit in addr >> 3 / kPageWords.
  mutable Addr cached_idx_ = ~Addr{0};
  mutable Page* cached_page_ = nullptr;
  std::size_t words_written_ = 0;
};

}  // namespace axihc
