// Sparse word-addressed memory contents. Functional only — all timing lives
// in MemoryController. Sparse so 4 MB-scale DMA workloads don't allocate
// 4 MB per test.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace axihc {

class BackingStore {
 public:
  /// Reads the 64-bit word containing `addr` (which is rounded down to an
  /// 8-byte boundary). Unwritten memory reads as zero.
  [[nodiscard]] std::uint64_t read_word(Addr addr) const;

  /// Writes the 64-bit word containing `addr`, honouring the byte-enable
  /// strobe `strb` (bit i enables byte i of the word).
  void write_word(Addr addr, std::uint64_t data, std::uint8_t strb = 0xff);

  /// Number of distinct words ever written (test helper).
  [[nodiscard]] std::size_t words_written() const { return words_.size(); }

  void clear() { words_.clear(); }

 private:
  static Addr word_index(Addr addr) { return addr >> 3; }

  std::unordered_map<Addr, std::uint64_t> words_;
};

}  // namespace axihc
