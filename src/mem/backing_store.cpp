#include "mem/backing_store.hpp"

namespace axihc {

std::uint64_t BackingStore::read_word(Addr addr) const {
  auto it = words_.find(word_index(addr));
  return it == words_.end() ? 0 : it->second;
}

void BackingStore::write_word(Addr addr, std::uint64_t data,
                              std::uint8_t strb) {
  const Addr idx = word_index(addr);
  if (strb == 0xff) {
    words_[idx] = data;
    return;
  }
  std::uint64_t word = 0;
  if (auto it = words_.find(idx); it != words_.end()) word = it->second;
  for (int byte = 0; byte < 8; ++byte) {
    if (strb & (1u << byte)) {
      const std::uint64_t mask = std::uint64_t{0xff} << (8 * byte);
      word = (word & ~mask) | (data & mask);
    }
  }
  words_[idx] = word;
}

}  // namespace axihc
