#include "mem/backing_store.hpp"

namespace axihc {

BackingStore::Page* BackingStore::find_page(Addr page_idx) const {
  if (page_idx == cached_idx_) return cached_page_;
  auto it = pages_.find(page_idx);
  if (it == pages_.end()) return nullptr;
  cached_idx_ = page_idx;
  cached_page_ = it->second.get();
  return cached_page_;
}

BackingStore::Page& BackingStore::touch_page(Addr page_idx) {
  if (Page* p = find_page(page_idx)) return *p;
  auto& slot = pages_[page_idx];
  slot = std::make_unique<Page>();
  cached_idx_ = page_idx;
  cached_page_ = slot.get();
  return *slot;
}

std::uint64_t BackingStore::read_word(Addr addr) const {
  const Addr idx = word_index(addr);
  const Page* p = find_page(idx / kPageWords);
  return p == nullptr ? 0 : p->data[idx % kPageWords];
}

void BackingStore::write_word(Addr addr, std::uint64_t data,
                              std::uint8_t strb) {
  const Addr idx = word_index(addr);
  Page& page = touch_page(idx / kPageWords);
  const Addr off = idx % kPageWords;
  std::uint64_t& word = page.data[off];
  if (strb == 0xff) {
    word = data;
  } else {
    for (int byte = 0; byte < 8; ++byte) {
      if (strb & (1u << byte)) {
        const std::uint64_t mask = std::uint64_t{0xff} << (8 * byte);
        word = (word & ~mask) | (data & mask);
      }
    }
  }
  std::uint64_t& bits = page.written[off / 64];
  const std::uint64_t bit = std::uint64_t{1} << (off % 64);
  words_written_ += (bits & bit) == 0;
  bits |= bit;
}

void BackingStore::clear() {
  pages_.clear();
  cached_idx_ = ~Addr{0};
  cached_page_ = nullptr;
  words_written_ = 0;
}

}  // namespace axihc
