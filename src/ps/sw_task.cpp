#include "ps/sw_task.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

SwTask::SwTask(std::string name, AxiLink& control_link,
               InterruptController& irq, SwTaskConfig cfg)
    : Component(std::move(name)), link_(control_link), irq_(irq), cfg_(cfg) {
  AXIHC_CHECK(cfg_.irq_line < irq.num_lines());
}

void SwTask::reset() {
  state_ = State::kStart;
  resume_at_ = 0;
  request_started_ = 0;
  irq_seen_ = 0;
  next_id_ = 1;
  done_ = 0;
  response_times_.clear();
}

void SwTask::tick(Cycle now) {
  switch (state_) {
    case State::kThink:
      if (now < resume_at_) break;
      state_ = State::kStart;
      [[fallthrough]];

    case State::kStart: {
      if (finished()) break;
      if (!link_.aw.can_push() || !link_.w.can_push()) break;
      AddrReq aw;
      aw.id = next_id_++;
      aw.addr = hactrl::kCtrl;
      aw.beats = 1;
      aw.issued_at = now;
      link_.aw.push(aw);
      link_.w.push({1 /* AP_START */, 0xff, true});
      request_started_ = now;
      state_ = State::kAwaitStartAck;
      break;
    }

    case State::kAwaitStartAck:
      if (!link_.b.can_pop()) break;
      link_.b.pop();
      state_ = State::kAwaitIrq;
      [[fallthrough]];

    case State::kAwaitIrq:
      if (!irq_.pending(cfg_.irq_line)) break;
      irq_.ack(cfg_.irq_line);
      irq_seen_ = now;
      // Model interrupt delivery latency before software observes it. The
      // countdown form burned ticks now+1..now+latency and acted on the
      // next; the deadline lands on the identical cycle.
      resume_at_ = now + cfg_.irq_latency + 1;
      state_ = State::kAckIrq;
      break;

    case State::kAckIrq:
      if (now < resume_at_) break;
      response_times_.record(now - request_started_);
      ++done_;
      resume_at_ = now + cfg_.think_cycles + 1;
      state_ = State::kThink;
      break;
  }
}

Cycle SwTask::next_activity(Cycle now) const {
  switch (state_) {
    case State::kThink:
    case State::kAckIrq:
      return now < resume_at_ ? resume_at_ : now;
    case State::kStart:
      if (finished()) return kNoCycle;
      return (link_.aw.can_push() && link_.w.can_push()) ? now : kNoCycle;
    case State::kAwaitStartAck:
      return link_.b.can_pop() ? now : kNoCycle;
    case State::kAwaitIrq:
      return irq_.pending(cfg_.irq_line) ? now : kNoCycle;
  }
  return now;
}

}  // namespace axihc
