#include "ps/sw_task.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

SwTask::SwTask(std::string name, AxiLink& control_link,
               InterruptController& irq, SwTaskConfig cfg)
    : Component(std::move(name)), link_(control_link), irq_(irq), cfg_(cfg) {
  AXIHC_CHECK(cfg_.irq_line < irq.num_lines());
}

void SwTask::reset() {
  state_ = State::kStart;
  wait_left_ = 0;
  request_started_ = 0;
  irq_seen_ = 0;
  next_id_ = 1;
  done_ = 0;
  response_times_.clear();
}

void SwTask::tick(Cycle now) {
  switch (state_) {
    case State::kThink:
      if (wait_left_ > 0) {
        --wait_left_;
        break;
      }
      state_ = State::kStart;
      [[fallthrough]];

    case State::kStart: {
      if (finished()) break;
      if (!link_.aw.can_push() || !link_.w.can_push()) break;
      AddrReq aw;
      aw.id = next_id_++;
      aw.addr = hactrl::kCtrl;
      aw.beats = 1;
      aw.issued_at = now;
      link_.aw.push(aw);
      link_.w.push({1 /* AP_START */, 0xff, true});
      request_started_ = now;
      state_ = State::kAwaitStartAck;
      break;
    }

    case State::kAwaitStartAck:
      if (!link_.b.can_pop()) break;
      link_.b.pop();
      state_ = State::kAwaitIrq;
      [[fallthrough]];

    case State::kAwaitIrq:
      if (!irq_.pending(cfg_.irq_line)) break;
      irq_.ack(cfg_.irq_line);
      irq_seen_ = now;
      // Model interrupt delivery latency before software observes it.
      wait_left_ = cfg_.irq_latency;
      state_ = State::kAckIrq;
      break;

    case State::kAckIrq:
      if (wait_left_ > 0) {
        --wait_left_;
        break;
      }
      response_times_.record(now - request_started_);
      ++done_;
      wait_left_ = cfg_.think_cycles;
      state_ = State::kThink;
      break;
  }
}

}  // namespace axihc
