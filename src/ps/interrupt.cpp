#include "ps/interrupt.hpp"

#include "common/check.hpp"

namespace axihc {

InterruptController::InterruptController(std::uint32_t num_lines)
    : raised_at_(num_lines, kNoCycle), counts_(num_lines, 0) {
  AXIHC_CHECK(num_lines >= 1);
}

void InterruptController::reset() {
  raised_at_.assign(raised_at_.size(), kNoCycle);
  counts_.assign(counts_.size(), 0);
}

void InterruptController::raise(std::uint32_t line, Cycle now) {
  AXIHC_CHECK(line < raised_at_.size());
  if (raised_at_[line] == kNoCycle) raised_at_[line] = now;
  ++counts_[line];
}

bool InterruptController::pending(std::uint32_t line) const {
  AXIHC_CHECK(line < raised_at_.size());
  return raised_at_[line] != kNoCycle;
}

Cycle InterruptController::ack(std::uint32_t line) {
  AXIHC_CHECK(line < raised_at_.size());
  const Cycle at = raised_at_[line];
  raised_at_[line] = kNoCycle;
  return at;
}

std::uint64_t InterruptController::raised_count(std::uint32_t line) const {
  AXIHC_CHECK(line < counts_.size());
  return counts_[line];
}

}  // namespace axihc
