// Interrupt controller model.
//
// §II/§IV of the paper: HAs signal completion to the PS by interrupts; the
// hypervisor routes each interrupt to the domain owning the HA. This model
// is a latched-line controller: lines are raised by HaControlSlave
// instances and consumed (acknowledged) by SwTask instances. Routing policy
// (which domain may see which line) is enforced by construction — a SwTask
// is built with the line indices its domain owns.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace axihc {

class InterruptController {
 public:
  explicit InterruptController(std::uint32_t num_lines);

  void raise(std::uint32_t line, Cycle now);

  [[nodiscard]] bool pending(std::uint32_t line) const;

  /// Clears the line; returns the cycle it was raised (kNoCycle if clear).
  Cycle ack(std::uint32_t line);

  [[nodiscard]] std::uint64_t raised_count(std::uint32_t line) const;
  [[nodiscard]] std::uint32_t num_lines() const {
    return static_cast<std::uint32_t>(raised_at_.size());
  }

  void reset();

 private:
  std::vector<Cycle> raised_at_;  // kNoCycle = not pending
  std::vector<std::uint64_t> counts_;
};

}  // namespace axihc
