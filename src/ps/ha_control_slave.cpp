#include "ps/ha_control_slave.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

HaControlSlave::HaControlSlave(std::string name, AxiLink& link,
                               ControllableHa& ha, InterruptController& irq,
                               std::uint32_t irq_line)
    : Component(std::move(name)),
      link_(link),
      ha_(ha),
      irq_(irq),
      irq_line_(irq_line) {
  AXIHC_CHECK(irq_line_ < irq.num_lines());
}

void HaControlSlave::reset() {
  was_busy_ = false;
  done_sticky_ = false;
  jobs_ = 0;
}

void HaControlSlave::apply_write(Addr offset, std::uint64_t value) {
  switch (offset) {
    case hactrl::kCtrl:
      if ((value & 1) != 0 && !ha_.busy()) ha_.start();
      break;
    case hactrl::kDoneClr:
      done_sticky_ = false;
      break;
    default:
      break;  // writes to RO/unknown registers are ignored
  }
}

std::uint64_t HaControlSlave::read(Addr offset) const {
  switch (offset) {
    case hactrl::kStatus: {
      std::uint64_t v = 0;
      if (ha_.busy()) v |= hactrl::kStatusBusy;
      if (done_sticky_) v |= hactrl::kStatusDone;
      return v;
    }
    case hactrl::kJobs:
      return jobs_;
    default:
      return 0;
  }
}

void HaControlSlave::tick(Cycle now) {
  // Completion edge: busy -> idle.
  const bool busy = ha_.busy();
  if (was_busy_ && !busy) {
    done_sticky_ = true;
    ++jobs_;
    irq_.raise(irq_line_, now);
  }
  was_busy_ = busy;

  // Register write: AW + single W -> B.
  if (link_.aw.can_pop() && link_.w.can_pop() && link_.b.can_push()) {
    const AddrReq aw = link_.aw.pop();
    AXIHC_CHECK_MSG(aw.beats == 1,
                    name() << ": HA control writes must be single-beat");
    const WBeat wb = link_.w.pop();
    AXIHC_CHECK(wb.last);
    apply_write(aw.addr, wb.data);
    link_.b.push({aw.id, Resp::kOkay});
  }
  // Register read: AR -> single R.
  if (link_.ar.can_pop() && link_.r.can_push()) {
    const AddrReq ar = link_.ar.pop();
    AXIHC_CHECK_MSG(ar.beats == 1,
                    name() << ": HA control reads must be single-beat");
    link_.r.push({ar.id, read(ar.addr), true, Resp::kOkay});
  }
}

Cycle HaControlSlave::next_activity(Cycle now) const {
  // A busy-state edge must be latched (and the IRQ raised) on the next tick.
  if (was_busy_ != ha_.busy()) return now;
  // Any pending register access needs service. Conservative: a write also
  // needs W and B headroom, but a stuck peer keeps those channels stable, so
  // `now` is only ever over-eager, never late.
  if (link_.aw.can_pop() || link_.w.can_pop() || link_.ar.can_pop()) {
    return now;
  }
  return kNoCycle;
}

}  // namespace axihc
