// SW-task model (§II): the software side of an acceleration request.
//
// Runs the canonical offload loop on the PS:
//   1. program the HA: write AP_START over its control interface;
//   2. continue asynchronously until the HA's completion interrupt;
//   3. acknowledge, record the response time, optionally "think", repeat.
//
// The response time measured here is the end-to-end quantity the paper's
// case study reports per acceleration request: from the start command to
// the completion interrupt, including all bus contention the HA suffered.
#pragma once

#include <cstdint>

#include "axi/axi.hpp"
#include "ps/ha_control_slave.hpp"
#include "ps/interrupt.hpp"
#include "sim/component.hpp"
#include "stats/stats.hpp"

namespace axihc {

struct SwTaskConfig {
  /// Interrupt line of the controlled HA.
  std::uint32_t irq_line = 0;
  /// Idle cycles between an interrupt and the next start (software work).
  Cycle think_cycles = 0;
  /// 0 = run forever; otherwise stop after this many completed requests.
  std::uint64_t max_requests = 0;
  /// Interrupt delivery latency (GIC + hypervisor routing), in cycles.
  Cycle irq_latency = 20;
};

class SwTask final : public Component {
 public:
  /// Controls the HA behind `control_link` (slave side served by a
  /// HaControlSlave) and waits on `irq`.
  SwTask(std::string name, AxiLink& control_link, InterruptController& irq,
         SwTaskConfig cfg = {});

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;
  [[nodiscard]] TickScope tick_scope() const override {
    // Serial: tick() polls the InterruptController directly — shared state
    // the channel graph cannot express as an endpoint edge.
    return TickScope::kSerial;
  }

  [[nodiscard]] std::uint64_t requests_completed() const { return done_; }
  [[nodiscard]] const LatencyStats& response_times() const {
    return response_times_;
  }
  [[nodiscard]] bool finished() const {
    return cfg_.max_requests != 0 && done_ >= cfg_.max_requests;
  }

 private:
  enum class State { kThink, kStart, kAwaitStartAck, kAwaitIrq, kAckIrq };

  AxiLink& link_;
  InterruptController& irq_;
  SwTaskConfig cfg_;

  State state_ = State::kStart;
  /// First cycle the current wait (IRQ latency / think time) is over —
  /// deadline form, so waiting ticks are pure no-ops.
  Cycle resume_at_ = 0;
  Cycle request_started_ = 0;
  Cycle irq_seen_ = 0;
  TxnId next_id_ = 1;
  std::uint64_t done_ = 0;
  LatencyStats response_times_;
};

}  // namespace axihc
