// AXI control slave interface of a hardware accelerator (§II: "SW-tasks use
// AXI slave interfaces to setup the configuration of HAs, acting on
// memory-mapped registers").
//
// Wraps a ControllableHa with the standard Xilinx-style register block:
//   0x00 CTRL    w1s  bit0 = AP_START (kick one job; ignored while busy)
//   0x08 STATUS  ro   bit0 = AP_BUSY, bit1 = AP_DONE (sticky)
//   0x10 DONE_CLR w   any write clears AP_DONE
//   0x18 JOBS    ro   completed-job counter
// and raises the accelerator's interrupt line on every busy->idle edge.
// The SW-task reaches this block through the PS-FPGA interface, modelled by
// the AxiLink passed in.
#pragma once

#include <cstdint>

#include "axi/axi.hpp"
#include "ha/controllable.hpp"
#include "ps/interrupt.hpp"
#include "sim/component.hpp"

namespace axihc::hactrl {
inline constexpr Addr kCtrl = 0x00;
inline constexpr Addr kStatus = 0x08;
inline constexpr Addr kDoneClr = 0x10;
inline constexpr Addr kJobs = 0x18;
inline constexpr std::uint64_t kStatusBusy = 1;
inline constexpr std::uint64_t kStatusDone = 2;
}  // namespace axihc::hactrl

namespace axihc {

class HaControlSlave final : public Component {
 public:
  /// Serves the control registers of `ha` over the slave side of `link`
  /// and raises `irq_line` of `irq` when a job completes.
  HaControlSlave(std::string name, AxiLink& link, ControllableHa& ha,
                 InterruptController& irq, std::uint32_t irq_line);

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;
  [[nodiscard]] TickScope tick_scope() const override {
    // Serial: tick() drives the ControllableHa (start/abort) and raises
    // InterruptController lines — direct foreign-component mutation.
    return TickScope::kSerial;
  }

  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_; }

 private:
  void apply_write(Addr offset, std::uint64_t value);
  [[nodiscard]] std::uint64_t read(Addr offset) const;

  AxiLink& link_;
  ControllableHa& ha_;
  InterruptController& irq_;
  std::uint32_t irq_line_;

  bool was_busy_ = false;
  bool done_sticky_ = false;
  std::uint64_t jobs_ = 0;
};

}  // namespace axihc
