// Sweep report generator (`axihc --sweep-report`): turns the engine's
// JSON-lines rows (runner.hpp) into a design-space summary.
//
// Three objectives per cell:
//   * throughput_bpc  — bytes moved per cycle (maximize);
//   * predictability  — WCLA bound slack (maximize) when every row carries
//     an analytic bound, else -read_p99 (maximize ⇔ minimize tail latency)
//     so SmartConnect/out-of-order sweeps still rank;
//   * lut             — estimated LUT cost (minimize).
//
// The report lists the Pareto front under those objectives and, per sweep
// axis, a sensitivity table: for each value the axis takes, the mean of
// every objective over all cells holding that value — the marginal effect
// of turning that one knob, averaged over the rest of the grid.
#pragma once

#include <string>
#include <vector>

namespace axihc {

/// Markdown report (human-facing; EXPERIMENTS.md embeds one).
[[nodiscard]] std::string sweep_report_markdown(
    const std::vector<std::string>& jsonl_lines);

/// The same content as one JSON document (machine-facing; CI diffs it).
[[nodiscard]] std::string sweep_report_json(
    const std::vector<std::string>& jsonl_lines);

}  // namespace axihc
