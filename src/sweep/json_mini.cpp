#include "sweep/json_mini.hpp"

#include <cctype>
#include <cstdlib>

#include "common/check.hpp"

namespace axihc {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    AXIHC_CHECK_MSG(pos_ == text_.size(),
                    "json: trailing characters at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    AXIHC_CHECK_MSG(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    AXIHC_CHECK_MSG(peek() == c, "json: expected '" << c << "' at offset "
                                                    << pos_ << ", got '"
                                                    << text_[pos_] << "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.raw = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      AXIHC_CHECK_MSG(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        AXIHC_CHECK_MSG(pos_ < text_.size(), "json: unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Our writers never emit \u escapes; keep them verbatim so the
            // value is at least inspectable.
            out += "\\u";
            break;
          default:
            AXIHC_CHECK_MSG(false, "json: unknown escape '\\" << e << "'");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    AXIHC_CHECK_MSG(pos_ > start, "json: expected a value at offset " << pos_);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.raw = text_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(v.raw.c_str(), &end);
    AXIHC_CHECK_MSG(end == v.raw.c_str() + v.raw.size(),
                    "json: bad number '" << v.raw << "'");
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace axihc
