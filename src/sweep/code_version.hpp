// Code-version digest for the sweep result cache.
//
// A cached measurement is only valid while the simulator that produced it
// is byte-for-byte the one that would reproduce it, so cache keys pair the
// config digest with a digest of the source tree. cmake/gen_code_version.cmake
// hashes every file under src/ and tools/ at build time and bakes the result
// into the binary (code_version_gen.cpp in the build tree); editing any
// source and rebuilding therefore invalidates every cache entry.
//
// The AXIHC_CODE_VERSION environment variable overrides the baked value —
// tests use it to exercise cache invalidation without rebuilding.
#pragma once

#include <string>

namespace axihc {

/// The effective code-version token (env override, else the baked digest).
[[nodiscard]] std::string code_version();

}  // namespace axihc
