#include "sweep/code_version.hpp"

#include <cstdlib>

namespace axihc {

// Defined by the generated code_version_gen.cpp in the build tree
// (cmake/gen_code_version.cmake).
const char* code_version_baked();

std::string code_version() {
  if (const char* env = std::getenv("AXIHC_CODE_VERSION")) {
    if (*env != '\0') return env;
  }
  return code_version_baked();
}

}  // namespace axihc
