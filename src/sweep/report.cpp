#include "sweep/report.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/check.hpp"
#include "sweep/json_mini.hpp"

namespace axihc {

namespace {

struct Row {
  std::uint64_t cell = 0;
  std::vector<std::pair<std::string, std::string>> axes;  // id -> value
  double throughput = 0.0;
  double wcla_slack = -1.0;
  double read_p99 = 0.0;
  double lut = 0.0;
  bool cached = false;
  bool has_cached = false;
};

struct Parsed {
  std::string name = "sweep";
  bool all_bounded = true;  // every row carries a WCLA bound
  std::size_t skipped_disproved = 0;  // statically refuted, never simulated
  std::size_t skipped_errors = 0;     // builder rejected the config
  std::vector<Row> rows;

  /// The predictability objective of one row under the chosen metric.
  [[nodiscard]] double predictability(const Row& r) const {
    return all_bounded ? r.wcla_slack : -r.read_p99;
  }
  [[nodiscard]] const char* metric_name() const {
    return all_bounded ? "wcla_slack" : "neg_read_p99";
  }
};

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

Parsed parse_rows(const std::vector<std::string>& lines) {
  Parsed out;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    const JsonValue v = parse_json(line);
    const JsonValue* cell = v.find("cell");
    if (cell == nullptr) continue;  // header or foreign line
    // Annotation rows carry no measurements: a statically disproved cell
    // (prove_verdict without cycles) or a build failure must not pollute
    // the Pareto front / sensitivity averages. Counted, then skipped.
    if (v.find("error") != nullptr) {
      ++out.skipped_errors;
      continue;
    }
    if (v.find("cycles") == nullptr) {
      ++out.skipped_disproved;
      continue;
    }
    Row r;
    r.cell = static_cast<std::uint64_t>(cell->number);
    if (const JsonValue* name = v.find("sweep")) {
      out.name = name->str_or(out.name);
    }
    if (const JsonValue* axes = v.find("axes")) {
      for (const auto& [k, val] : axes->members) {
        r.axes.emplace_back(k, val.str_or(""));
      }
    }
    if (const JsonValue* t = v.find("throughput_bpc")) {
      r.throughput = t->num_or(0.0);
    }
    if (const JsonValue* s = v.find("wcla_slack")) {
      r.wcla_slack = s->num_or(-1.0);
    }
    if (const JsonValue* p = v.find("read_p99")) r.read_p99 = p->num_or(0.0);
    if (const JsonValue* l = v.find("lut")) r.lut = l->num_or(0.0);
    if (const JsonValue* c = v.find("cached")) {
      r.has_cached = true;
      r.cached = c->boolean;
    }
    // wcla_slack == -1 flags "no analytic bound for this configuration".
    if (r.wcla_slack < 0.0) out.all_bounded = false;
    out.rows.push_back(std::move(r));
  }
  AXIHC_CHECK_MSG(!out.rows.empty(), "--sweep-report: no sweep rows found");
  return out;
}

/// True when `a` dominates `b`: no objective worse, at least one better.
bool dominates(const Parsed& p, const Row& a, const Row& b) {
  const double pa = p.predictability(a);
  const double pb = p.predictability(b);
  if (a.throughput < b.throughput || pa < pb || a.lut > b.lut) return false;
  return a.throughput > b.throughput || pa > pb || a.lut < b.lut;
}

std::vector<const Row*> pareto_front(const Parsed& p) {
  std::vector<const Row*> front;
  for (const Row& candidate : p.rows) {
    bool dominated = false;
    for (const Row& other : p.rows) {
      if (&other != &candidate && dominates(p, other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(&candidate);
  }
  // Highest-throughput first; cell index breaks ties deterministically.
  std::sort(front.begin(), front.end(), [](const Row* a, const Row* b) {
    if (a->throughput != b->throughput) return a->throughput > b->throughput;
    return a->cell < b->cell;
  });
  // Duplicate configs (identical axes via overlapping values) add nothing.
  std::vector<const Row*> unique;
  for (const Row* r : front) {
    bool dup = false;
    for (const Row* u : unique) {
      dup = u->axes == r->axes && u->throughput == r->throughput &&
            u->lut == r->lut;
      if (dup) break;
    }
    if (!dup) unique.push_back(r);
  }
  return unique;
}

struct AxisStats {
  std::size_t cells = 0;
  double throughput = 0.0;
  double predictability = 0.0;
  double lut = 0.0;
};

/// axis id -> (value -> accumulated means), axes and values in first-seen
/// order so the report is deterministic in row order.
using Sensitivity =
    std::vector<std::pair<std::string,
                          std::vector<std::pair<std::string, AxisStats>>>>;

Sensitivity sensitivity_tables(const Parsed& p) {
  Sensitivity tables;
  for (const Row& r : p.rows) {
    for (const auto& [axis, value] : r.axes) {
      auto table =
          std::find_if(tables.begin(), tables.end(),
                       [&](const auto& t) { return t.first == axis; });
      if (table == tables.end()) {
        tables.push_back({axis, {}});
        table = tables.end() - 1;
      }
      auto& values = table->second;
      auto entry =
          std::find_if(values.begin(), values.end(),
                       [&](const auto& e) { return e.first == value; });
      if (entry == values.end()) {
        values.push_back({value, {}});
        entry = values.end() - 1;
      }
      AxisStats& s = entry->second;
      ++s.cells;
      s.throughput += r.throughput;
      s.predictability += p.predictability(r);
      s.lut += r.lut;
    }
  }
  for (auto& [axis, values] : tables) {
    for (auto& [value, s] : values) {
      const auto n = static_cast<double>(s.cells);
      s.throughput /= n;
      s.predictability /= n;
      s.lut /= n;
    }
  }
  return tables;
}

std::size_t cached_count(const Parsed& p) {
  std::size_t n = 0;
  for (const Row& r : p.rows) n += r.has_cached && r.cached ? 1 : 0;
  return n;
}

}  // namespace

std::string sweep_report_markdown(
    const std::vector<std::string>& jsonl_lines) {
  const Parsed p = parse_rows(jsonl_lines);
  const std::vector<const Row*> front = pareto_front(p);
  const Sensitivity tables = sensitivity_tables(p);

  std::ostringstream os;
  os << "# Sweep report: " << p.name << "\n\n";
  os << p.rows.size() << " cells (" << cached_count(p)
     << " from cache). Predictability metric: `" << p.metric_name()
     << "`";
  if (!p.all_bounded) {
    os << " (some cells have no analytic WCLA bound, so the read p99 tail "
          "stands in)";
  }
  os << ".";
  if (p.skipped_disproved != 0) {
    os << " Excluded " << p.skipped_disproved
       << " statically disproved cell(s) (see their prove_detail rows).";
  }
  if (p.skipped_errors != 0) {
    os << " Excluded " << p.skipped_errors
       << " cell(s) whose config failed to build (see their error rows).";
  }
  os << "\n\n";

  os << "## Pareto front (throughput vs predictability vs LUT)\n\n";
  os << "| cell |";
  const std::vector<std::pair<std::string, std::string>>& axis_order =
      p.rows.front().axes;
  for (const auto& [axis, value] : axis_order) os << " " << axis << " |";
  os << " throughput_bpc | " << p.metric_name() << " | lut |\n";
  os << "|---|";
  for (std::size_t i = 0; i < axis_order.size(); ++i) os << "---|";
  os << "---|---|---|\n";
  for (const Row* r : front) {
    os << "| " << r->cell << " |";
    for (const auto& [axis, value] : r->axes) os << " " << value << " |";
    os << " " << fmt(r->throughput) << " | " << fmt(p.predictability(*r))
       << " | " << static_cast<std::uint64_t>(r->lut) << " |\n";
  }

  for (const auto& [axis, values] : tables) {
    os << "\n## Sensitivity: " << axis << "\n\n";
    os << "| value | cells | mean throughput_bpc | mean " << p.metric_name()
       << " | mean lut |\n|---|---|---|---|---|\n";
    for (const auto& [value, s] : values) {
      os << "| " << value << " | " << s.cells << " | " << fmt(s.throughput)
         << " | " << fmt(s.predictability) << " | " << fmt(s.lut) << " |\n";
    }
  }
  return os.str();
}

std::string sweep_report_json(const std::vector<std::string>& jsonl_lines) {
  const Parsed p = parse_rows(jsonl_lines);
  const std::vector<const Row*> front = pareto_front(p);
  const Sensitivity tables = sensitivity_tables(p);

  std::ostringstream os;
  os << "{\"sweep\":\"" << p.name << "\",\"rows\":" << p.rows.size()
     << ",\"cached\":" << cached_count(p) << ",\"disproved\":"
     << p.skipped_disproved << ",\"errors\":" << p.skipped_errors
     << ",\"metric\":\"" << p.metric_name() << "\",\"pareto\":[";
  for (std::size_t i = 0; i < front.size(); ++i) {
    const Row* r = front[i];
    if (i != 0) os << ",";
    os << "{\"cell\":" << r->cell << ",\"axes\":{";
    for (std::size_t a = 0; a < r->axes.size(); ++a) {
      if (a != 0) os << ",";
      os << "\"" << r->axes[a].first << "\":\"" << r->axes[a].second << "\"";
    }
    os << "},\"throughput_bpc\":" << fmt(r->throughput)
       << ",\"predictability\":" << fmt(p.predictability(*r)) << ",\"lut\":"
       << static_cast<std::uint64_t>(r->lut) << "}";
  }
  os << "],\"sensitivity\":{";
  bool first_axis = true;
  for (const auto& [axis, values] : tables) {
    if (!first_axis) os << ",";
    first_axis = false;
    os << "\"" << axis << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"value\":\"" << values[i].first << "\",\"cells\":"
         << values[i].second.cells << ",\"throughput_bpc\":"
         << fmt(values[i].second.throughput) << ",\"predictability\":"
         << fmt(values[i].second.predictability) << ",\"lut\":"
         << fmt(values[i].second.lut) << "}";
    }
    os << "]";
  }
  os << "}}";
  return os.str();
}

}  // namespace axihc
