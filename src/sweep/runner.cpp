#include "sweep/runner.hpp"

#include <algorithm>
#include <cinttypes>
#include <map>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/check.hpp"
#include "config/canonical.hpp"
#include "config/system_builder.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "obs/latency_audit.hpp"
#include "prove/prove.hpp"
#include "resources/resources.hpp"
#include "sim/parallel_jobs.hpp"
#include "sweep/code_version.hpp"
#include "sweep/json_mini.hpp"

namespace axihc {

namespace {

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string hex_digest(std::uint64_t d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, d);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// The prover columns shared by annotated and simulated rows. The
/// certificate digest rides in the fragment, so cached certificates live
/// under the same (config digest, code version) key as every other cached
/// measurement and invalidate with the code-version digest.
std::string prove_fields(const ProveReport& proof) {
  std::ostringstream os;
  os << "\"prove_verdict\":\"" << to_string(proof.verdict())
     << "\",\"static_backlog_bound\":" << proof.static_backlog_bound()
     << ",\"prove_certificate\":\""
     << hex_digest(proof.certificate_digest()) << "\"";
  return os.str();
}

/// The config-independent part of one cell's row: everything a rerun of the
/// same (config, code) pair reproduces bit-exactly, and therefore exactly
/// what the cache stores. No cell index, no axis values — two cells whose
/// configs collapse to the same canonical form share this fragment.
///
/// Three fragment shapes, distinguished by the leading field:
///   "cycles":...         a simulated cell (plus prove_* annotation columns)
///   "prove_verdict":...  a statically disproved cell — annotated, never
///                        simulated (no cycles/state_digest)
///   "error":"..."        a config the builder rejects — a structured row
///                        instead of a mid-batch abort
std::string execute_cell(const IniFile& cfg) {
  std::unique_ptr<ConfiguredSystem> sys;
  try {
    sys = std::make_unique<ConfiguredSystem>(cfg);
  } catch (const ModelError& e) {
    return "\"error\":\"" + json_escape(e.what()) + "\"";
  }

  // Static screen (src/prove): a disproved cell would simulate a system
  // with a certified refutation (deadlock cycle, starved port, ID
  // aliasing) — burn no cycles on it, emit the verdict instead.
  const ProveReport proof = sys->prove();
  if (proof.disproved()) {
    std::ostringstream os;
    os << prove_fields(proof) << ",\"prove_detail\":\"";
    bool first = true;
    for (const ProveCheck& c : proof.checks) {
      if (c.verdict != ProveVerdict::kDisproved) continue;
      if (!first) os << "; ";
      first = false;
      os << json_escape(c.id + ": " + c.detail);
    }
    os << "\"";
    return os.str();
  }

  // The latency auditor rides along on every cell: its audit_wcrt_* bounds
  // (src/analysis/wcla.hpp) are the sweep's predictability metric, and it
  // forces the serial tick kernel — parallelism lives across cells, never
  // inside one, so rows are independent of AXIHC_BENCH_THREADS. It never
  // touches simulated state, so state digests stay comparable with plain
  // `axihc` runs of the same config.
  sys->observe_config().latency_audit = true;
  const Cycle cycles = sys->run();

  std::uint64_t total_bytes = 0;
  Cycle read_max = 0;
  Cycle read_p99 = 0;
  Cycle write_max = 0;
  for (std::size_t i = 0; i < sys->ha_count(); ++i) {
    const MasterStats& s = sys->ha(i).stats();
    total_bytes += s.bytes_read + s.bytes_written;
    if (s.read_latency.count() > 0) {
      read_max = std::max(read_max, s.read_latency.max());
      read_p99 = std::max(read_p99, s.read_latency.percentile(99.0));
    }
    if (s.write_latency.count() > 0) {
      write_max = std::max(write_max, s.write_latency.max());
    }
  }

  const LatencyAudit* audit = sys->latency_audit();
  AXIHC_CHECK(audit != nullptr);
  // Bound slack: how far the observed worst case stayed below the WCLA
  // bound (1.0 = untouched, 0.0 = at the bound, negative = violated).
  // -1.0 flags "no analytic bound for this configuration" (SmartConnect,
  // out-of-order mode, FR-FCFS memory, PS stall interference).
  const double wcla_slack = audit->bound_checked() > 0
                                ? 1.0 - audit->max_latency_ratio()
                                : -1.0;

  const SocConfig& soc_cfg = sys->soc().config();
  const ResourceUsage res =
      soc_cfg.kind == InterconnectKind::kHyperConnect
          ? estimate_hyperconnect(soc_cfg.hc)
          : estimate_smartconnect(soc_cfg.num_ports);

  // Observed per-port eFIFO peak (watermark enabled by the audit rider):
  // the prover soundness cross-check compares it against
  // static_backlog_bound. -1 = no eFIFO structure (SmartConnect).
  std::int64_t efifo_max = -1;
  if (const HyperConnect* hc = sys->soc().hyperconnect()) {
    efifo_max = 0;
    for (PortIndex p = 0; p < soc_cfg.num_ports; ++p) {
      efifo_max = std::max(
          efifo_max, static_cast<std::int64_t>(hc->efifo_peak(p)));
    }
  }

  std::ostringstream os;
  os << "\"cycles\":" << cycles << ",\"state_digest\":\""
     << hex_digest(sys->soc().sim().state_digest()) << "\",\"total_bytes\":"
     << total_bytes << ",\"throughput_bpc\":"
     << json_double(cycles > 0 ? static_cast<double>(total_bytes) /
                                     static_cast<double>(cycles)
                               : 0.0)
     << ",\"read_max\":" << read_max << ",\"read_p99\":" << read_p99
     << ",\"write_max\":" << write_max << ",\"bound_checked\":"
     << audit->bound_checked() << ",\"bound_violations\":"
     << audit->bound_violations() << ",\"wcla_slack\":"
     << json_double(wcla_slack) << ",\"lut\":" << res.lut << ",\"ff\":"
     << res.ff << ",\"bram\":" << res.bram << ",\"dsp\":" << res.dsp
     << ",\"ha\":[";
  for (std::size_t i = 0; i < sys->ha_count(); ++i) {
    const MasterStats& s = sys->ha(i).stats();
    if (i != 0) os << ",";
    os << "{\"type\":\"" << json_escape(sys->ha_type(i))
       << "\",\"bytes_read\":"
       << s.bytes_read << ",\"bytes_written\":" << s.bytes_written
       << ",\"failed\":" << (s.reads_failed + s.writes_failed)
       << ",\"read_p50\":"
       << (s.read_latency.count() > 0 ? s.read_latency.percentile(50.0) : 0)
       << ",\"read_p99\":"
       << (s.read_latency.count() > 0 ? s.read_latency.percentile(99.0) : 0)
       << ",\"read_max\":"
       << (s.read_latency.count() > 0 ? s.read_latency.max() : 0)
       << ",\"write_max\":"
       << (s.write_latency.count() > 0 ? s.write_latency.max() : 0) << "}";
  }
  os << "],\"efifo_max\":" << efifo_max << "," << prove_fields(proof);
  return os.str();
}

/// Cache file for one (config, code) key. The fragment is stored verbatim;
/// a reader that fails any sanity check treats the entry as a miss.
std::string cache_path(const std::string& dir, std::uint64_t config_digest,
                       const std::string& code) {
  return dir + "/" + hex_digest(config_digest).substr(2) + "-" + code +
         ".json";
}

bool cache_load(const std::string& path, std::string* fragment) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *fragment = buf.str();
  // Sanity: a fragment always starts with one of the three shape-defining
  // fields (simulated / statically disproved / build error); anything else
  // (truncated write, foreign file) re-runs the cell.
  return fragment->rfind("\"cycles\":", 0) == 0 ||
         fragment->rfind("\"prove_verdict\":", 0) == 0 ||
         fragment->rfind("\"error\":", 0) == 0;
}

void cache_store(const std::string& path, const std::string& fragment) {
  // Write-to-temp + rename so concurrent shards sharing one cache directory
  // never observe a torn entry (rename is atomic within a filesystem).
#if defined(__unix__) || defined(__APPLE__)
  const std::string tmp = path + ".tmp" + std::to_string(::getpid());
#else
  const std::string tmp = path + ".tmp";
#endif
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // cache is best-effort; the row is already computed
    out << fragment;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

struct CellResult {
  std::string fragment;
  JobTiming timing;
};

}  // namespace

SweepSummary run_sweep(const IniFile& ini, const SweepOptions& opts) {
  AXIHC_CHECK_MSG(opts.shard_count >= 1, "--sweep-shard count must be >= 1");
  AXIHC_CHECK_MSG(opts.shard_index < opts.shard_count,
                  "--sweep-shard index " << opts.shard_index
                                         << " out of range for "
                                         << opts.shard_count << " shard(s)");
  const SweepSpec spec = parse_sweep_spec(ini);
  const std::string code = code_version();

  if (!opts.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.cache_dir, ec);
    AXIHC_CHECK_MSG(!ec, "cannot create cache dir '" << opts.cache_dir
                                                     << "': " << ec.message());
  }

  SweepSummary summary;
  summary.name = spec.name;
  summary.cells = spec.cell_count();

  std::vector<std::size_t> owned;
  for (std::size_t cell = 0; cell < summary.cells; ++cell) {
    if (cell % opts.shard_count == opts.shard_index) owned.push_back(cell);
  }
  summary.shard_cells = owned.size();
  summary.lines.reserve(owned.size());

  // Process owned cells in order, in batches of ~2x the worker count: the
  // output streams while later batches still simulate, and each batch's
  // rows are emitted in cell order regardless of which worker finished
  // first — a parallel sweep prints byte-identical rows to a serial one.
  const std::size_t batch =
      std::max<std::size_t>(std::size_t{2} * parallel_job_threads(), 1);

  for (std::size_t base = 0; base < owned.size(); base += batch) {
    const std::size_t end = std::min(owned.size(), base + batch);

    struct PendingCell {
      std::size_t cell = 0;
      std::uint64_t config = 0;
      std::string axes_json;
      std::string fragment;  // empty until resolved
      bool cached = false;
      JobTiming timing;
      IniFile cfg;
    };
    std::vector<PendingCell> pending;
    pending.reserve(end - base);

    for (std::size_t i = base; i < end; ++i) {
      PendingCell p;
      p.cell = owned[i];
      p.cfg = sweep_cell_config(ini, spec, p.cell);
      p.config = config_digest(p.cfg);

      const std::vector<std::size_t> idx = spec.cell_indices(p.cell);
      std::ostringstream axes;
      axes << "{";
      for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        if (a != 0) axes << ",";
        axes << "\"" << json_escape(spec.axes[a].id()) << "\":\""
             << json_escape(spec.axes[a].values[idx[a]]) << "\"";
      }
      axes << "}";
      p.axes_json = axes.str();

      if (!opts.cache_dir.empty()) {
        p.cached =
            cache_load(cache_path(opts.cache_dir, p.config, code),
                       &p.fragment);
      }
      pending.push_back(std::move(p));
    }

    // Dedup within the batch: axes whose values canonicalize to the same
    // config (e.g. `0x10 | 16`, or a swept key the builder ignores) simulate
    // once; the duplicates borrow the fragment and count as cache hits. With
    // caching on, cross-batch duplicates hit the stored entry instead.
    std::vector<std::size_t> miss_slots;
    std::vector<std::pair<std::size_t, std::size_t>> dup_slots;  // slot, job
    std::map<std::uint64_t, std::size_t> job_for_config;
    std::vector<std::function<CellResult()>> jobs;
    for (std::size_t slot = 0; slot < pending.size(); ++slot) {
      if (pending[slot].cached) continue;
      const auto it = job_for_config.find(pending[slot].config);
      if (it != job_for_config.end()) {
        dup_slots.emplace_back(slot, it->second);
        continue;
      }
      job_for_config.emplace(pending[slot].config, jobs.size());
      miss_slots.push_back(slot);
      const IniFile* cfg = &pending[slot].cfg;
      jobs.push_back([cfg] {
        CellResult r;
        r.fragment = run_timed_job([cfg] { return execute_cell(*cfg); },
                                   r.timing);
        return r;
      });
    }
    std::vector<CellResult> results =
        run_parallel_jobs<CellResult>(std::move(jobs));
    for (std::size_t j = 0; j < miss_slots.size(); ++j) {
      PendingCell& p = pending[miss_slots[j]];
      p.fragment = std::move(results[j].fragment);
      p.timing = results[j].timing;
      if (!opts.cache_dir.empty()) {
        cache_store(cache_path(opts.cache_dir, p.config, code), p.fragment);
      }
    }
    for (const auto& [slot, job] : dup_slots) {
      pending[slot].fragment = pending[miss_slots[job]].fragment;
      pending[slot].cached = true;
    }

    for (PendingCell& p : pending) {
      if (p.cached) {
        ++summary.cache_hits;
      } else {
        ++summary.executed;
      }
      if (p.fragment.rfind("\"prove_verdict\":", 0) == 0) {
        ++summary.disproved;
      } else if (p.fragment.rfind("\"error\":", 0) == 0) {
        ++summary.errors;
      }
      std::ostringstream row;
      row << "{\"cell\":" << p.cell << ",\"sweep\":\""
          << json_escape(spec.name) << "\",\"axes\":" << p.axes_json
          << ",\"config\":\"" << hex_digest(p.config) << "\",\"code\":\""
          << json_escape(code) << "\"," << p.fragment;
      if (!opts.deterministic) {
        row << ",\"cached\":" << (p.cached ? "true" : "false")
            << ",\"wall_ms\":" << json_double(p.timing.wall_ms)
            << ",\"rss_kb\":" << p.timing.rss_kb;
      }
      row << "}";
      if (opts.out != nullptr) {
        *opts.out << row.str() << "\n";
        opts.out->flush();
      }
      summary.lines.push_back(row.str());
    }
  }
  return summary;
}

std::size_t check_pins(const std::vector<std::string>& lines,
                       const std::string& pins_text, std::ostream& err) {
  // Index produced rows by cell.
  struct Produced {
    std::string config;
    std::string state;
  };
  std::vector<std::pair<std::uint64_t, Produced>> produced;
  for (const std::string& line : lines) {
    const JsonValue row = parse_json(line);
    const JsonValue* cell = row.find("cell");
    const JsonValue* config = row.find("config");
    const JsonValue* state = row.find("state_digest");
    AXIHC_CHECK_MSG(cell != nullptr && config != nullptr,
                    "sweep row missing cell/config");
    // Annotation rows (statically disproved cells, build errors) carry no
    // state digest; against a pinned cell that reads as a state mismatch —
    // a cell that used to simulate and now doesn't IS a divergence.
    produced.emplace_back(
        static_cast<std::uint64_t>(cell->number),
        Produced{config->str_or(""),
                 state != nullptr ? state->str_or("") : std::string()});
  }

  std::size_t mismatches = 0;
  std::istringstream in(pins_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue pin = parse_json(line);
    const JsonValue* cell = pin.find("cell");
    const JsonValue* config = pin.find("config");
    const JsonValue* state = pin.find("state_digest");
    AXIHC_CHECK_MSG(cell != nullptr && config != nullptr && state != nullptr,
                    "pin row missing cell/config/state_digest");
    const auto id = static_cast<std::uint64_t>(cell->number);
    const Produced* match = nullptr;
    for (const auto& [c, p] : produced) {
      if (c == id) {
        match = &p;
        break;
      }
    }
    if (match == nullptr) continue;  // other shard's cell
    if (match->config != config->str_or("")) {
      ++mismatches;
      err << "cell " << id << ": config digest " << match->config
          << " != pinned " << config->str_or("") << "\n";
    } else if (match->state != state->str_or("")) {
      ++mismatches;
      err << "cell " << id << ": state digest " << match->state
          << " != pinned " << state->str_or("") << "\n";
    }
  }
  return mismatches;
}

}  // namespace axihc
