#include "sweep/sweep.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace axihc {

namespace {

constexpr std::size_t kMaxCells = std::size_t{1} << 20;

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::uint64_t parse_range_term(const std::string& token,
                               const std::string& raw) {
  AXIHC_CHECK_MSG(!token.empty(), "[sweep] malformed range '" << raw << "'");
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(token.c_str(), &end, 0);
  AXIHC_CHECK_MSG(end == token.c_str() + token.size(),
                  "[sweep] range term '" << token << "' is not a number in '"
                                         << raw << "'");
  return v;
}

}  // namespace

std::size_t SweepSpec::cell_count() const {
  std::size_t n = 1;
  for (const SweepAxis& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<std::size_t> SweepSpec::cell_indices(std::size_t cell) const {
  AXIHC_CHECK_MSG(cell < cell_count(),
                  "sweep cell " << cell << " out of range (cells="
                                << cell_count() << ")");
  std::vector<std::size_t> idx(axes.size(), 0);
  // Last axis varies fastest: peel radices from the back.
  for (std::size_t i = axes.size(); i-- > 0;) {
    const std::size_t radix = axes[i].values.size();
    idx[i] = cell % radix;
    cell /= radix;
  }
  return idx;
}

std::vector<std::string> expand_axis_values(const std::string& raw) {
  const std::string trimmed = trim(raw);
  if (trimmed.rfind("range ", 0) == 0) {
    std::istringstream in(trimmed.substr(6));
    std::string lo_s;
    std::string hi_s;
    std::string step_s;
    std::string extra;
    in >> lo_s >> hi_s >> step_s;
    AXIHC_CHECK_MSG(!(in >> extra),
                    "[sweep] range takes exactly 3 terms, got extra '"
                        << extra << "' in '" << raw << "'");
    const std::uint64_t lo = parse_range_term(lo_s, raw);
    const std::uint64_t hi = parse_range_term(hi_s, raw);
    const std::uint64_t step = parse_range_term(step_s, raw);
    AXIHC_CHECK_MSG(step > 0, "[sweep] range step must be > 0 in '" << raw
                                                                   << "'");
    AXIHC_CHECK_MSG(lo <= hi, "[sweep] range lo > hi in '" << raw << "'");
    std::vector<std::string> out;
    for (std::uint64_t v = lo; v <= hi; v += step) {
      out.push_back(std::to_string(v));
      if (v > hi - step) break;  // overflow guard for hi near UINT64_MAX
    }
    return out;
  }
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t bar = trimmed.find('|', start);
    const std::string piece =
        trim(bar == std::string::npos ? trimmed.substr(start)
                                      : trimmed.substr(start, bar - start));
    AXIHC_CHECK_MSG(!piece.empty(),
                    "[sweep] empty value in axis list '" << raw << "'");
    out.push_back(piece);
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return out;
}

SweepSpec parse_sweep_spec(const IniFile& ini) {
  const IniSection* sw = ini.section("sweep");
  AXIHC_CHECK_MSG(sw != nullptr, "--sweep needs a [sweep] section");
  AXIHC_CHECK_MSG(ini.section("campaign") == nullptr,
                  "a file cannot hold both [sweep] and [campaign]");

  SweepSpec spec;
  spec.name = sw->get_string("name", "sweep");
  spec.cycles = sw->get_u64("cycles", 0);

  for (const auto& [key, value] : sw->entries()) {
    if (key == "name" || key == "cycles") continue;
    AXIHC_CHECK_MSG(key.rfind("axis.", 0) == 0,
                    "[sweep] unknown key '" << key
                                            << "' (expected axis.<section>."
                                               "<key>, name, or cycles)");
    const std::string target = key.substr(5);
    const std::size_t dot = target.find('.');
    AXIHC_CHECK_MSG(dot != std::string::npos && dot > 0 &&
                        dot + 1 < target.size(),
                    "[sweep] axis '" << key
                                     << "' must name axis.<section>.<key>");
    SweepAxis axis;
    axis.section = target.substr(0, dot);
    axis.key = target.substr(dot + 1);
    AXIHC_CHECK_MSG(axis.section != "sweep",
                    "[sweep] cannot sweep the [sweep] section itself");
    for (const SweepAxis& existing : spec.axes) {
      AXIHC_CHECK_MSG(existing.id() != axis.id(),
                      "[sweep] duplicate axis '" << axis.id() << "'");
    }
    axis.values = expand_axis_values(value);
    spec.axes.push_back(std::move(axis));
  }

  AXIHC_CHECK_MSG(spec.cell_count() <= kMaxCells,
                  "sweep expands to " << spec.cell_count()
                                      << " cells (cap " << kMaxCells << ")");
  return spec;
}

IniFile sweep_cell_config(const IniFile& ini, const SweepSpec& spec,
                          std::size_t cell) {
  const std::vector<std::size_t> idx = spec.cell_indices(cell);

  // Base description minus [sweep]: rebuild section by section so repeated
  // names ([ha0], [ha1], ...) survive in file order.
  IniFile cfg;
  for (const IniSection& sec : ini.sections()) {
    if (sec.name() == "sweep") continue;
    IniSection& copy = cfg.add_section(sec.name());
    for (const auto& [k, v] : sec.entries()) copy.set(k, v);
  }

  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const SweepAxis& axis = spec.axes[a];
    cfg.get_or_add_section(axis.section)
        .replace(axis.key, axis.values[idx[a]]);
  }

  if (spec.cycles != 0) {
    cfg.get_or_add_section("system")
        .replace("cycles", std::to_string(spec.cycles));
  }
  return cfg;
}

}  // namespace axihc
