// Minimal JSON reader for the sweep engine's own JSON-lines output.
//
// The report generator (`axihc --sweep-report`) and the digest pin checker
// (`--sweep-check`) consume files this repo's writers produced, so the
// parser is deliberately small: UTF-8 passthrough, \uXXXX escapes kept
// verbatim, numbers as double plus the raw token (so 64-bit digests printed
// as strings stay exact — the writers quote anything that must round-trip).
// Throws ModelError on malformed input.
#pragma once

#include <string>
#include <vector>

namespace axihc {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  ///< number token or string contents
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  /// Object member lookup (nullptr when absent or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] double num_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] std::string str_or(const std::string& fallback) const {
    return kind == Kind::kString ? raw : fallback;
  }
};

/// Parses one complete JSON document (throws ModelError on trailing junk).
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace axihc
