// The sweep execution engine behind `axihc --sweep` (see sweep.hpp for the
// spec format).
//
// Every cell is one shared-nothing simulation job on the persistent worker
// pool (sim/parallel_jobs.hpp). Cells are processed in index order in
// batches of ~2x the worker count, so the JSON-lines output STREAMS while
// the sweep runs yet stays in deterministic cell order — a parallel sweep
// prints byte-identical rows to a serial one (`--sweep-deterministic` drops
// the wall-clock fields so whole files byte-compare).
//
// Incremental result cache: each cell's measurement fragment is stored
// under (config digest, code version) in `cache_dir`, one file per key.
// Identical configs — whether from a re-run, an overlapping sweep, or two
// cells that happen to collapse to the same canonical config — share one
// entry. Editing any source invalidates everything via the code-version
// digest (sweep/code_version.hpp); editing one axis value re-runs only the
// cells it touches.
//
// Sharding: `--sweep-shard i/N` runs the cells with index % N == i. Shards
// share nothing at runtime (cache directories may be shared or separate);
// the union of all shard outputs, sorted by the `cell` field, equals the
// unsharded output.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "config/ini.hpp"
#include "sweep/sweep.hpp"

namespace axihc {

struct SweepOptions {
  /// Result-cache directory ("" = caching off). Created on demand.
  std::string cache_dir;
  /// This process runs cells with index % shard_count == shard_index.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Omit the non-reproducible fields ("cached", "wall_ms", "rss_kb") so
  /// reruns and shard unions byte-compare.
  bool deterministic = false;
  /// Rows are streamed here as they complete (nullptr = collect only).
  std::ostream* out = nullptr;
};

struct SweepSummary {
  std::string name;
  std::size_t cells = 0;        ///< total cells in the spec
  std::size_t shard_cells = 0;  ///< cells this shard owns
  std::size_t executed = 0;     ///< simulated this run (cache misses)
  std::size_t cache_hits = 0;
  /// Cells statically refuted by the prover (src/prove): annotated rows
  /// with prove_verdict/static_backlog_bound, never simulated.
  std::size_t disproved = 0;
  /// Cells whose config the builder rejected: structured "error" rows.
  std::size_t errors = 0;
  /// Rows in cell order (this shard's cells only).
  std::vector<std::string> lines;
};

/// Runs the sweep described by `ini` (base config + [sweep] section).
[[nodiscard]] SweepSummary run_sweep(const IniFile& ini,
                                     const SweepOptions& opts);

/// Checks produced rows against a pin file (JSON-lines rows from an earlier
/// run, typically --sweep-deterministic output): for every pinned cell this
/// run produced, the canonical config digest and the simulation state
/// digest must match. Returns the number of mismatches, describing each on
/// `err`. Pins for cells outside this shard are ignored.
[[nodiscard]] std::size_t check_pins(const std::vector<std::string>& lines,
                                     const std::string& pins_text,
                                     std::ostream& err);

}  // namespace axihc
