// Design-space-exploration sweep specs (`axihc --sweep <spec.ini>`).
//
// A sweep file is a normal experiment description (the base system:
// [system], [hyperconnect], [haN], ...) plus one [sweep] section declaring
// the axes to explore. Every axis targets one `section.key` of the base
// description and lists the values it takes:
//
//   [sweep]
//   name = fig5_grid           ; label carried into rows/reports
//   cycles = 200000            ; per-cell horizon; 0 = each cell's [system]
//   axis.hyperconnect.budgets = 64 7 | 50 21 | 36 36 | 21 50 | 7 64
//   axis.hyperconnect.reservation_period = range 1000 4000 1000
//   axis.ha1.gap = 0 | 32
//
// Value syntax: '|'-separated literals (a literal may contain spaces —
// budget lists, for example), or `range lo hi step` expanding to the
// inclusive arithmetic progression lo, lo+step, ... <= hi.
//
// The spec expands to the cartesian product of its axes in file order, the
// LAST axis varying fastest. Cell `i` of the sweep is a pure function of
// (spec, i): the base description minus [sweep], with each axis key
// replaced by its cell value (sections are created when the base lacks
// them) and [system] cycles overridden when the spec sets a horizon. That
// purity is what makes the result cache (runner.hpp) and shard fan-out
// (`--sweep-shard i/N`) safe: every process computes identical cells.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "config/ini.hpp"

namespace axihc {

struct SweepAxis {
  std::string section;
  std::string key;
  std::vector<std::string> values;

  [[nodiscard]] std::string id() const { return section + "." + key; }
};

struct SweepSpec {
  std::string name = "sweep";
  /// Per-cell horizon override; 0 = each cell's own [system] cycles.
  Cycle cycles = 0;
  /// Axes in file order; the last axis varies fastest across cells.
  std::vector<SweepAxis> axes;

  /// Cartesian cell count (1 when there are no axes: the base config is
  /// the single cell).
  [[nodiscard]] std::size_t cell_count() const;
  /// Per-axis value index of cell `cell` (mixed-radix decomposition).
  [[nodiscard]] std::vector<std::size_t> cell_indices(std::size_t cell) const;
};

/// Expands one axis value expression ('|' list or `range lo hi step`).
/// Throws ModelError on empty lists/elements and malformed ranges.
[[nodiscard]] std::vector<std::string> expand_axis_values(
    const std::string& raw);

/// Parses + validates the [sweep] section against the base description
/// (throws on a missing section, unknown [sweep] keys, malformed axis
/// declarations, a [campaign] section — campaigns and sweeps are separate
/// products — or a cell count above the 2^20 safety cap).
[[nodiscard]] SweepSpec parse_sweep_spec(const IniFile& ini);

/// The full config of cell `cell`: base minus [sweep], axis overrides
/// applied, horizon override materialized into [system] cycles (so the
/// config digest covers it). Pure function of (ini, spec, cell).
[[nodiscard]] IniFile sweep_cell_config(const IniFile& ini,
                                        const SweepSpec& spec,
                                        std::size_t cell);

}  // namespace axihc
