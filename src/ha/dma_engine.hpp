// Model of a high-throughput DMA engine (Xilinx AXI DMA / AXI CDMA class).
//
// The paper uses two AXI DMAs as representative HAs (§VI-B) because "they can
// mimic the behavior on the bus of many HAs and are capable of saturating the
// maximum memory bandwidth". This model issues back-to-back bursts with the
// configured burst length and outstanding depth, which saturates the modelled
// memory controller the same way.
//
// Modes:
//  * kRead      — stream `bytes_per_job` of reads (MM2S half);
//  * kWrite     — stream `bytes_per_job` of writes (S2MM half);
//  * kReadWrite — both streams concurrently and independently, as in the
//                 paper's HA_DMA case study (read 4 MB and write back 4 MB);
//  * kCopy      — a true memcpy: write data is the data previously read
//                 (verifiable end-to-end through the backing store).
#pragma once

#include <cstdint>
#include <vector>

#include "ha/controllable.hpp"
#include "ha/master_base.hpp"

namespace axihc {

enum class DmaMode { kRead, kWrite, kReadWrite, kCopy };

struct DmaConfig {
  DmaMode mode = DmaMode::kReadWrite;
  Addr read_base = 0x1000'0000;
  Addr write_base = 0x2000'0000;
  /// Bytes moved per job in each active direction.
  std::uint64_t bytes_per_job = 4ull << 20;  // the paper's 4 MB
  BeatCount burst_beats = 16;                // the paper's 16-word bursts
  std::uint32_t max_outstanding = 8;
  /// 0 = loop forever; otherwise stop after this many completed jobs.
  std::uint64_t max_jobs = 0;
  /// Accept out-of-order completion (future-work platforms, §V-A).
  bool tolerate_out_of_order = false;
  /// If true the DMA idles until start() is called (SW-task controlled
  /// operation via a ps::HaControlSlave); jobs do not self-re-arm.
  bool externally_triggered = false;
};

class DmaEngine final : public AxiMasterBase, public ControllableHa {
 public:
  DmaEngine(std::string name, AxiLink& link, DmaConfig cfg = {});

  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;

  /// ControllableHa: arms one job (externally_triggered mode).
  void start() override;
  [[nodiscard]] bool busy() const override { return armed_; }

  /// Completed jobs (one job = all programmed bytes moved, both directions).
  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_done_; }

  /// Cycle at which each job completed (for rate measurements).
  [[nodiscard]] const std::vector<Cycle>& job_completion_cycles() const {
    return job_done_cycles_;
  }

  [[nodiscard]] const DmaConfig& config() const { return cfg_; }

  /// True once max_jobs were completed (never true when looping forever).
  [[nodiscard]] bool finished() const {
    return cfg_.max_jobs != 0 && jobs_done_ >= cfg_.max_jobs;
  }

  /// Base metrics plus the job counter.
  void register_metrics(MetricsRegistry& reg) override;

  void append_digest(StateDigest& d) const override;

 private:
  void on_read_beat(const RBeat& beat, Cycle now) override;
  void on_read_complete(const AddrReq& req, Cycle now) override;
  void on_write_complete(const AddrReq& req, Cycle now) override;
  void reset_master() override;

  [[nodiscard]] bool read_stream_active() const;
  [[nodiscard]] bool write_stream_active() const;
  void maybe_finish_job(Cycle now);

  DmaConfig cfg_;
  std::uint64_t read_issued_bytes_ = 0;
  std::uint64_t read_done_bytes_ = 0;
  std::uint64_t write_issued_bytes_ = 0;
  std::uint64_t write_done_bytes_ = 0;
  std::uint64_t jobs_done_ = 0;
  bool armed_ = false;
  bool job_slice_open_ = false;  // a "job" duration slice is begun on trace_
  std::vector<Cycle> job_done_cycles_;
  /// kCopy: data read but not yet written back.
  std::vector<std::uint64_t> copy_buffer_;
};

}  // namespace axihc
