#include "ha/traffic_gen.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

TrafficGenerator::TrafficGenerator(std::string name, AxiLink& link,
                                   TrafficConfig cfg)
    : AxiMasterBase(std::move(name), link, cfg.max_outstanding,
                    cfg.max_outstanding, cfg.tolerate_out_of_order),
      cfg_(cfg) {
  AXIHC_CHECK(cfg_.burst_beats >= 1 && cfg_.burst_beats <= kMaxAxi4BurstBeats);
  AXIHC_CHECK(cfg_.region_bytes >= std::uint64_t{cfg_.burst_beats} * kBusBytes);
  set_qos(cfg_.qos);
}

void TrafficGenerator::reset_master() {
  issued_ = 0;
  offset_ = 0;
  next_try_at_ = 0;
  next_is_write_ = false;
}

TrafficConfig TrafficGenerator::bandwidth_stealer(Addr base) {
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.base = base;
  cfg.region_bytes = 4ull << 20;
  cfg.burst_beats = kMaxAxi4BurstBeats;  // 256-beat bursts: 2 KiB per grant
  cfg.gap_cycles = 0;
  cfg.max_outstanding = 16;
  return cfg;
}

void TrafficGenerator::tick(Cycle now) {
  const bool budget_left =
      cfg_.max_transactions == 0 || issued_ < cfg_.max_transactions;

  if (budget_left && now >= next_try_at_) {
    const bool want_write =
        cfg_.direction == TrafficDirection::kWrite ||
        (cfg_.direction == TrafficDirection::kMixed && next_is_write_);
    bool sent = false;
    if (want_write) {
      if (can_issue_write()) {
        issue_write(cfg_.base + offset_, cfg_.burst_beats, now,
                    /*fill_seed=*/offset_);
        sent = true;
      }
    } else {
      if (can_issue_read()) {
        issue_read(cfg_.base + offset_, cfg_.burst_beats, now);
        sent = true;
      }
    }
    if (sent) {
      ++issued_;
      offset_ += std::uint64_t{cfg_.burst_beats} * kBusBytes;
      if (offset_ + std::uint64_t{cfg_.burst_beats} * kBusBytes >
          cfg_.region_bytes) {
        offset_ = 0;
      }
      // The countdown form idled ticks T+1..T+gap and issued at T+gap+1;
      // the deadline form allows the same cycle.
      next_try_at_ = now + cfg_.gap_cycles + 1;
      if (cfg_.direction == TrafficDirection::kMixed) {
        next_is_write_ = !next_is_write_;
      }
    }
  }

  pump(now);
}

Cycle TrafficGenerator::next_activity(Cycle now) const {
  if (!pump_idle()) return now;
  const bool budget_left =
      cfg_.max_transactions == 0 || issued_ < cfg_.max_transactions;
  if (budget_left) {
    if (now < next_try_at_) return next_try_at_;  // waiting out the gap
    const bool want_write =
        cfg_.direction == TrafficDirection::kWrite ||
        (cfg_.direction == TrafficDirection::kMixed && next_is_write_);
    if (want_write ? can_issue_write() : can_issue_read()) return now;
  }
  return kNoCycle;  // budget spent, or blocked on backpressure/responses
}

}  // namespace axihc
