// Configurable synthetic AXI traffic generator.
//
// Used for protocol/arbitration experiments: greedy masters, periodic
// masters, and the "bandwidth stealer" adversary of [11] (a master issuing
// very long bursts to monopolize a round-robin arbiter that grants whole
// transactions per round).
#pragma once

#include <cstdint>

#include "ha/master_base.hpp"

namespace axihc {

enum class TrafficDirection { kRead, kWrite, kMixed };

struct TrafficConfig {
  TrafficDirection direction = TrafficDirection::kRead;
  Addr base = 0x4000'0000;
  /// Size of the address region cycled over.
  std::uint64_t region_bytes = 1ull << 20;
  BeatCount burst_beats = 16;
  /// Idle cycles inserted between consecutive issues (0 = greedy).
  Cycle gap_cycles = 0;
  std::uint32_t max_outstanding = 8;
  /// 0 = unlimited; otherwise stop after this many issued transactions.
  std::uint64_t max_transactions = 0;
  /// Accept out-of-order completion (future-work platforms, §V-A).
  bool tolerate_out_of_order = false;
  /// AXI QoS value (AxQOS) stamped on every request.
  std::uint8_t qos = 0;
};

class TrafficGenerator final : public AxiMasterBase {
 public:
  TrafficGenerator(std::string name, AxiLink& link, TrafficConfig cfg = {});

  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;

  [[nodiscard]] const TrafficConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t transactions_issued() const { return issued_; }
  [[nodiscard]] std::uint64_t transactions_completed() const {
    return stats().reads_completed + stats().writes_completed;
  }
  [[nodiscard]] bool finished() const {
    return cfg_.max_transactions != 0 &&
           transactions_completed() >= cfg_.max_transactions && idle();
  }

  /// Preset: the bandwidth-stealer adversary of [11] — greedy writes/reads
  /// with maximal AXI4 bursts.
  static TrafficConfig bandwidth_stealer(Addr base);

 private:
  void reset_master() override;

  TrafficConfig cfg_;
  std::uint64_t issued_ = 0;
  Addr offset_ = 0;
  /// First cycle the next issue may be attempted (deadline form of the
  /// inter-issue gap, so gap ticks are pure no-ops).
  Cycle next_try_at_ = 0;
  bool next_is_write_ = false;  // kMixed alternation
};

}  // namespace axihc
