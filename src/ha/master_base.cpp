#include "ha/master_base.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

AxiMasterBase::AxiMasterBase(std::string name, AxiLink& link,
                             std::uint32_t max_outstanding_reads,
                             std::uint32_t max_outstanding_writes,
                             bool allow_out_of_order)
    : Component(std::move(name)),
      link_(link),
      max_or_(max_outstanding_reads),
      max_ow_(max_outstanding_writes),
      allow_ooo_(allow_out_of_order) {
  AXIHC_CHECK(max_or_ > 0);
  AXIHC_CHECK(max_ow_ > 0);
  link_.attach_endpoint(*this);
}

void AxiMasterBase::append_digest(StateDigest& d) const {
  d.mix(stats_.reads_issued);
  d.mix(stats_.reads_completed);
  d.mix(stats_.writes_issued);
  d.mix(stats_.writes_completed);
  d.mix(stats_.bytes_read);
  d.mix(stats_.bytes_written);
  d.mix(stats_.reads_failed);
  d.mix(stats_.writes_failed);
  d.mix(stats_.stray_r_beats);
  d.mix(stats_.stray_b_resps);
  // Histograms fold as their exact summary (count/sum/min/max): cheaper
  // than mixing 1920 buckets and still sensitive to any latency change.
  const auto mix_hist = [&d](const LogHistogram& h) {
    d.mix(static_cast<std::uint64_t>(h.count()));
    d.mix(h.sum());
    d.mix(h.count() != 0 ? static_cast<std::uint64_t>(h.min()) : 0);
    d.mix(h.count() != 0 ? static_cast<std::uint64_t>(h.max()) : 0);
  };
  mix_hist(stats_.read_latency);
  mix_hist(stats_.write_latency);
  d.mix(static_cast<std::uint64_t>(next_id_));
  d.mix(static_cast<std::uint64_t>(reads_in_flight_.size()));
  for (const auto& f : reads_in_flight_) d.mix(f.beats_left);
  d.mix(static_cast<std::uint64_t>(writes_in_flight_.size()));
  d.mix(static_cast<std::uint64_t>(w_backlog_.size()));
}

void AxiMasterBase::register_metrics(MetricsRegistry& reg) {
  reg.add_counter(name() + ".reads_issued", &stats_.reads_issued);
  reg.add_counter(name() + ".reads_completed", &stats_.reads_completed);
  reg.add_counter(name() + ".writes_issued", &stats_.writes_issued);
  reg.add_counter(name() + ".writes_completed", &stats_.writes_completed);
  reg.add_counter(name() + ".bytes_read", &stats_.bytes_read);
  reg.add_counter(name() + ".bytes_written", &stats_.bytes_written);
  reg.add_counter(name() + ".reads_failed", &stats_.reads_failed);
  reg.add_counter(name() + ".writes_failed", &stats_.writes_failed);
  reg.add_counter(name() + ".stray_r_beats", &stats_.stray_r_beats);
  reg.add_counter(name() + ".stray_b_resps", &stats_.stray_b_resps);
  reg.add_gauge(name() + ".reads_outstanding", [this] {
    return static_cast<double>(reads_in_flight_.size());
  });
  reg.add_gauge(name() + ".writes_outstanding", [this] {
    return static_cast<double>(writes_in_flight_.size());
  });
}

void AxiMasterBase::reset() {
  next_id_ = 1;
  reads_in_flight_.clear();
  writes_in_flight_.clear();
  w_backlog_.clear();
  stats_ = MasterStats{};
  reset_master();
}

void AxiMasterBase::abandon_in_flight() {
  stats_.reads_failed += reads_in_flight_.size();
  stats_.writes_failed += writes_in_flight_.size();
  reads_in_flight_.clear();
  writes_in_flight_.clear();
  w_backlog_.clear();
  // Stale beats and requests die with the abandoned transactions — a
  // response left in the link would otherwise be attributed to whatever the
  // restarted master issues next.
  link_.ar.clear_contents();
  link_.aw.clear_contents();
  link_.w.clear_contents();
  link_.r.clear_contents();
  link_.b.clear_contents();
  reset_master();
}

TxnId AxiMasterBase::next_id() {
  const TxnId id = next_id_;
  next_id_ = (next_id_ + 1) % kIdLimit;
  if (next_id_ == 0) next_id_ = 1;
  return id;
}

bool AxiMasterBase::can_issue_read() const {
  return link_.ar.can_push() && reads_in_flight_.size() < max_or_;
}

void AxiMasterBase::issue_read(Addr addr, BeatCount beats, Cycle now) {
  AXIHC_CHECK(can_issue_read());
  AddrReq req;
  req.id = next_id();
  req.addr = addr;
  req.beats = beats;
  req.size_log2 = kBusSizeLog2;
  req.qos = qos_;
  req.issued_at = now;
  reads_in_flight_.push_back({req, beats});
  link_.ar.push(req);
  ++stats_.reads_issued;
}

bool AxiMasterBase::can_issue_write() const {
  return link_.aw.can_push() && writes_in_flight_.size() < max_ow_;
}

void AxiMasterBase::issue_write(Addr addr, BeatCount beats, Cycle now,
                                std::uint64_t fill_seed) {
  AXIHC_CHECK(can_issue_write());
  AddrReq req;
  req.id = next_id();
  req.addr = addr;
  req.beats = beats;
  req.size_log2 = kBusSizeLog2;
  req.qos = qos_;
  req.issued_at = now;
  writes_in_flight_.push_back({req, beats});
  link_.aw.push(req);
  for (BeatCount i = 0; i < beats; ++i) {
    w_backlog_.push_back({fill_seed + i, 0xff, i + 1 == beats});
  }
  ++stats_.writes_issued;
}

void AxiMasterBase::issue_write_data(Addr addr,
                                     const std::vector<std::uint64_t>& data,
                                     Cycle now) {
  AXIHC_CHECK(can_issue_write());
  AXIHC_CHECK(!data.empty());
  AddrReq req;
  req.id = next_id();
  req.addr = addr;
  req.beats = static_cast<BeatCount>(data.size());
  req.size_log2 = kBusSizeLog2;
  req.qos = qos_;
  req.issued_at = now;
  writes_in_flight_.push_back({req, req.beats});
  link_.aw.push(req);
  for (std::size_t i = 0; i < data.size(); ++i) {
    w_backlog_.push_back({data[i], 0xff, i + 1 == data.size()});
  }
  ++stats_.writes_issued;
}

// Slot resolution tolerates responses that match nothing in flight
// (kStraySlot): after a recovery reset abandons the outstanding
// transactions, their responses can still arrive — the master must sink
// them, it cannot crash on them. Strays are counted (stats_.stray_*) so a
// healthy run can still assert zero.
std::size_t AxiMasterBase::read_slot_for(const RBeat& beat) {
  if (reads_in_flight_.empty()) return kStraySlot;
  if (!allow_ooo_) {
    return beat.id == reads_in_flight_.front().req.id ? 0 : kStraySlot;
  }
  // Out-of-order tolerant: reordering is burst-granular (the memory serves
  // whole transactions), so the beat belongs to the oldest in-flight read
  // with its ID that has already started (or any with that ID — per-ID
  // order is guaranteed by AXI).
  for (std::size_t i = 0; i < reads_in_flight_.size(); ++i) {
    if (reads_in_flight_[i].req.id == beat.id) return i;
  }
  return kStraySlot;
}

std::size_t AxiMasterBase::write_slot_for(const BResp& resp) {
  if (writes_in_flight_.empty()) return kStraySlot;
  if (!allow_ooo_) {
    return resp.id == writes_in_flight_.front().req.id ? 0 : kStraySlot;
  }
  for (std::size_t i = 0; i < writes_in_flight_.size(); ++i) {
    if (writes_in_flight_[i].req.id == resp.id) return i;
  }
  return kStraySlot;
}

void AxiMasterBase::pump(Cycle now) {
  // Stream one write-data beat per cycle (64-bit bus rate).
  if (!w_backlog_.empty() && link_.w.can_push()) {
    link_.w.push(w_backlog_.front());
    w_backlog_.pop_front();
  }

  // Drain one read beat per cycle. AXI ends a read burst at RLAST, full
  // stop — the beat count is only an expectation. A mismatch against the
  // issued ARLEN (early RLAST from a truncated or error-terminated burst,
  // surplus beats from a corrupted length) is a protocol error charged to
  // the transaction, not a simulator invariant: the transfer completes on
  // RLAST and is counted as failed.
  if (link_.r.can_pop()) {
    const RBeat beat = link_.r.pop();
    const std::size_t slot = read_slot_for(beat);
    if (slot == kStraySlot) {
      ++stats_.stray_r_beats;
      if (tracing()) trace_->record(now, name(), "stray_r_beat");
    } else {
      auto& entry = reads_in_flight_[slot];
      if (entry.beats_left > 0) {
        --entry.beats_left;
      } else {
        entry.error = true;  // surplus beat past the expected count
      }
      if (is_error(beat.resp)) entry.error = true;
      stats_.bytes_read += kBusBytes;
      on_read_beat(beat, now);
      if (beat.last) {
        if (entry.beats_left != 0) entry.error = true;  // short burst
        const AddrReq done = entry.req;
        const bool failed = entry.error;
        reads_in_flight_.erase(reads_in_flight_.begin() +
                               static_cast<std::ptrdiff_t>(slot));
        ++stats_.reads_completed;
        if (failed) {
          ++stats_.reads_failed;
          if (tracing()) trace_->record(now, name(), "read_error");
        }
        stats_.read_latency.record(now - done.issued_at);
        if (audit_ != nullptr && audit_->enabled()) {
          audit_->on_complete(audit_port_, false, done, failed, now);
        }
        on_read_complete(done, now);
      }
    }
  }

  // Drain one write response per cycle.
  if (link_.b.can_pop()) {
    const BResp resp = link_.b.pop();
    const std::size_t slot = write_slot_for(resp);
    if (slot == kStraySlot) {
      ++stats_.stray_b_resps;
      if (tracing()) trace_->record(now, name(), "stray_b_resp");
    } else {
      const AddrReq done = writes_in_flight_[slot].req;
      writes_in_flight_.erase(writes_in_flight_.begin() +
                              static_cast<std::ptrdiff_t>(slot));
      ++stats_.writes_completed;
      if (is_error(resp.resp)) {
        ++stats_.writes_failed;
        if (tracing()) trace_->record(now, name(), "write_error");
      }
      stats_.bytes_written += burst_bytes(done);
      stats_.write_latency.record(now - done.issued_at);
      if (audit_ != nullptr && audit_->enabled()) {
        audit_->on_complete(audit_port_, true, done, is_error(resp.resp),
                            now);
      }
      on_write_complete(done, now);
    }
  }
}

void AxiMasterBase::on_read_beat(const RBeat&, Cycle) {}
void AxiMasterBase::on_read_complete(const AddrReq&, Cycle) {}
void AxiMasterBase::on_write_complete(const AddrReq&, Cycle) {}

}  // namespace axihc
