// Interface of an externally-triggered hardware accelerator.
//
// §II of the paper: each HA is controlled by a SW-task on the PS, which
// programs it over an AXI control slave interface; the HA runs
// asynchronously and signals completion with an interrupt. HAs implementing
// this interface can be wrapped by a ps::HaControlSlave, which provides the
// memory-mapped control registers and the interrupt line.
#pragma once

namespace axihc {

class ControllableHa {
 public:
  virtual ~ControllableHa() = default;

  /// Kicks one acceleration job. Must only be called when !busy().
  virtual void start() = 0;

  /// True while a job is in progress.
  [[nodiscard]] virtual bool busy() const = 0;
};

}  // namespace axihc
