#include "ha/dnn_accelerator.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace axihc {

namespace {
constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;
constexpr std::uint64_t M = 1'000'000;

/// Trace slice label for a bus-visible phase; nullptr for kDone (idle).
const char* phase_label(int phase) {
  switch (phase) {
    case 0: return "load";
    case 1: return "compute";
    case 2: return "store";
    default: return nullptr;
  }
}
}  // namespace

std::vector<DnnLayer> googlenet_layers() {
  // Quantized (8-bit) GoogleNet / Inception v1: weight bytes == parameter
  // count; feature maps are 8-bit activations; MACs from the architecture.
  // Pooling layers are folded into the preceding entry.
  return {
      {"conv1-7x7", 10 * KB, 150 * KB, 784 * KB, 118 * M},
      {"conv2-3x3", 114 * KB, 196 * KB, 588 * KB, 360 * M},
      {"inception-3a", 160 * KB, 588 * KB, 196 * KB, 128 * M},
      {"inception-3b", 380 * KB, 196 * KB, 368 * KB, 304 * M},
      {"inception-4a", 364 * KB, 92 * KB, 100 * KB, 73 * M},
      {"inception-4b", 438 * KB, 100 * KB, 100 * KB, 88 * M},
      {"inception-4c", 510 * KB, 100 * KB, 100 * KB, 100 * M},
      {"inception-4d", 592 * KB, 100 * KB, 103 * KB, 119 * M},
      {"inception-4e", 848 * KB, 103 * KB, 163 * KB, 170 * M},
      {"inception-5a", 1048 * KB, 41 * KB, 41 * KB, 54 * M},
      {"inception-5b", 1356 * KB, 41 * KB, 50 * KB, 71 * M},
      {"fc-classifier", 1 * MB, 1 * KB, 1 * KB, 1 * M},
  };
}

std::vector<DnnLayer> alexnet_layers() {
  // Quantized AlexNet: weight bytes == parameter count (8-bit), activations
  // 8-bit, MACs from the architecture. The three FC layers carry ~58 MB of
  // the ~61 MB total weights.
  return {
      {"conv1-11x11", 35 * KB, 154 * KB, 280 * KB, 105 * M},
      {"conv2-5x5", 307 * KB, 70 * KB, 173 * KB, 223 * M},
      {"conv3-3x3", 885 * KB, 43 * KB, 65 * KB, 149 * M},
      {"conv4-3x3", 663 * KB, 65 * KB, 65 * KB, 112 * M},
      {"conv5-3x3", 442 * KB, 65 * KB, 9 * KB, 74 * M},
      {"fc6", 37 * MB + 750 * KB, 9 * KB, 4 * KB, 38 * M},
      {"fc7", 16 * MB + 384 * KB, 4 * KB, 4 * KB, 17 * M},
      {"fc8", 4 * MB, 4 * KB, 1 * KB, 4 * M},
  };
}

DnnAccelerator::DnnAccelerator(std::string name, AxiLink& link, DnnConfig cfg)
    : AxiMasterBase(std::move(name), link, cfg.max_outstanding,
                    cfg.max_outstanding, cfg.tolerate_out_of_order),
      cfg_(std::move(cfg)) {
  AXIHC_CHECK_MSG(!cfg_.layers.empty(), "DNN schedule must have layers");
  AXIHC_CHECK(cfg_.macs_per_cycle > 0);
  AXIHC_CHECK(cfg_.burst_beats >= 1 && cfg_.burst_beats <= kMaxAxi4BurstBeats);
  if (cfg_.externally_triggered) {
    phase_ = Phase::kDone;  // idle until the SW-task starts a frame
  } else {
    start_layer();
  }
}

void DnnAccelerator::start() {
  AXIHC_CHECK_MSG(cfg_.externally_triggered,
                  name() << ": start() is only for externally_triggered mode");
  AXIHC_CHECK_MSG(!busy(), name() << ": start() while busy");
  layer_idx_ = 0;
  start_layer();
}

std::uint64_t DnnAccelerator::bytes_per_frame() const {
  std::uint64_t total = 0;
  for (const auto& l : cfg_.layers) {
    total += l.weight_bytes + l.ifmap_bytes + l.ofmap_bytes;
  }
  return total;
}

void DnnAccelerator::reset_master() {
  layer_idx_ = 0;
  frames_ = 0;
  frame_done_cycles_.clear();
  if (cfg_.externally_triggered) {
    phase_ = Phase::kDone;
  } else {
    start_layer();
  }
}

void DnnAccelerator::start_layer() {
  const DnnLayer& layer = cfg_.layers[layer_idx_];
  phase_ = Phase::kLoad;
  load_total_ = layer.weight_bytes + layer.ifmap_bytes;
  load_issued_ = load_done_ = 0;
  compute_cycles_ =
      (layer.macs + cfg_.macs_per_cycle - 1) / cfg_.macs_per_cycle;
  compute_end_ = 0;
  store_total_ = layer.ofmap_bytes;
  store_issued_ = store_done_ = 0;
}

void DnnAccelerator::append_digest(StateDigest& d) const {
  AxiMasterBase::append_digest(d);
  d.mix(frames_);
  d.mix(static_cast<std::uint64_t>(layer_idx_));
  d.mix(static_cast<std::uint64_t>(phase_));
  d.mix(load_done_);
  d.mix(store_done_);
  d.mix(static_cast<std::uint64_t>(compute_end_));
  for (Cycle c : frame_done_cycles_) d.mix(static_cast<std::uint64_t>(c));
}

void DnnAccelerator::register_metrics(MetricsRegistry& reg) {
  AxiMasterBase::register_metrics(reg);
  reg.add_counter(name() + ".frames_done", &frames_);
  reg.add_gauge(name() + ".layer_index",
                [this] { return static_cast<double>(layer_idx_); });
  reg.add_gauge(name() + ".phase", [this] {
    return static_cast<double>(static_cast<int>(phase_));
  });
}

void DnnAccelerator::trace_phase_change(Cycle now) {
  if (phase_ == traced_phase_) return;
  if (const char* old_label = phase_label(static_cast<int>(traced_phase_))) {
    trace()->record_end(now, name(), old_label);
  }
  if (const char* new_label = phase_label(static_cast<int>(phase_))) {
    trace()->record_begin(now, name(), new_label);
  }
  traced_phase_ = phase_;
}

void DnnAccelerator::tick(Cycle now) {
  if (tracing()) trace_phase_change(now);
  switch (phase_) {
    case Phase::kLoad: {
      if (load_issued_ < load_total_ && can_issue_read()) {
        const std::uint64_t remaining = load_total_ - load_issued_;
        const std::uint64_t beats64 =
            std::min<std::uint64_t>((remaining + 7) / 8, cfg_.burst_beats);
        const auto beats = static_cast<BeatCount>(beats64);
        issue_read(cfg_.weight_base + load_issued_, beats, now);
        load_issued_ += std::uint64_t{beats} * kBusBytes;
      }
      if (load_done_ >= load_total_) {
        phase_ = Phase::kCompute;
        // The naive countdown burned one tick per compute cycle starting
        // next tick and transitioned on the tick after the last one; the
        // deadline form lands on the identical cycle.
        compute_end_ = now + compute_cycles_ + 1;
      }
      break;
    }
    case Phase::kCompute: {
      if (now >= compute_end_) {
        phase_ = store_total_ > 0 ? Phase::kStore : Phase::kDone;
        if (phase_ == Phase::kDone) advance_after_store(now);
      }
      break;
    }
    case Phase::kStore: {
      if (store_issued_ < store_total_ && can_issue_write()) {
        const std::uint64_t remaining = store_total_ - store_issued_;
        const std::uint64_t beats64 =
            std::min<std::uint64_t>((remaining + 7) / 8, cfg_.burst_beats);
        const auto beats = static_cast<BeatCount>(beats64);
        issue_write(cfg_.buffer_base + store_issued_, beats, now,
                    /*fill_seed=*/store_issued_);
        store_issued_ += std::uint64_t{beats} * kBusBytes;
      }
      if (store_done_ >= store_total_) {
        phase_ = Phase::kDone;
        advance_after_store(now);
      }
      break;
    }
    case Phase::kDone:
      break;
  }

  pump(now);
}

Cycle DnnAccelerator::next_activity(Cycle now) const {
  if (tracing() && traced_phase_ != phase_) return now;  // slice sync pending
  if (!pump_idle()) return now;
  switch (phase_) {
    case Phase::kLoad:
      if (load_issued_ < load_total_ && can_issue_read()) return now;
      if (load_done_ >= load_total_) return now;  // phase transition pending
      return kNoCycle;  // blocked on backpressure or outstanding reads
    case Phase::kCompute:
      // No bus activity until the array finishes; the transition tick is
      // exactly compute_end_.
      return compute_end_ > now ? compute_end_ : now;
    case Phase::kStore:
      if (store_issued_ < store_total_ && can_issue_write()) return now;
      if (store_done_ >= store_total_) return now;  // phase transition pending
      return kNoCycle;
    case Phase::kDone:
      return kNoCycle;  // only start()/reset can re-arm
  }
  return now;
}

void DnnAccelerator::on_read_complete(const AddrReq& req, Cycle) {
  if (phase_ == Phase::kLoad) load_done_ += burst_bytes(req);
}

void DnnAccelerator::on_write_complete(const AddrReq& req, Cycle) {
  if (phase_ == Phase::kStore) store_done_ += burst_bytes(req);
}

void DnnAccelerator::advance_after_store(Cycle now) {
  ++layer_idx_;
  if (layer_idx_ < cfg_.layers.size()) {
    start_layer();
    return;
  }
  // Frame finished (the control slave raises the completion interrupt on
  // this busy->idle edge in SW-task controlled operation).
  ++frames_;
  frame_done_cycles_.push_back(now);
  if (tracing()) trace()->record(now, name(), "frame_done");
  layer_idx_ = 0;
  if (cfg_.externally_triggered || finished()) {
    phase_ = Phase::kDone;
  } else {
    start_layer();
  }
}

}  // namespace axihc
