// Model of a CHaiDNN-class DNN inference accelerator (§VI-C case study).
//
// CHaiDNN itself is RTL + a software stack; for interconnect evaluation what
// matters is the *bus-side traffic shape* of one inference: per layer, a
// burst of reads (weights + input feature map), a compute phase with no bus
// activity (the systolic/DSP array working out of on-chip buffers), then a
// burst of writes (output feature map). This model replays that phase
// structure over a configurable layer schedule; the default schedule is the
// quantized GoogleNet the paper runs, with per-layer weight/feature-map
// sizes and MAC counts from the published network architecture.
//
// Performance index, as in the paper: frames per second.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ha/controllable.hpp"
#include "ha/master_base.hpp"

namespace axihc {

/// One layer's bus and compute footprint.
struct DnnLayer {
  std::string name;
  std::uint64_t weight_bytes = 0;
  std::uint64_t ifmap_bytes = 0;
  std::uint64_t ofmap_bytes = 0;
  /// Multiply-accumulate operations (drives the compute-phase length).
  std::uint64_t macs = 0;
};

struct DnnConfig {
  std::vector<DnnLayer> layers;
  /// MACs retired per cycle by the accelerator's array. 256 models a
  /// mid-size CHaiDNN configuration.
  std::uint64_t macs_per_cycle = 256;
  BeatCount burst_beats = 16;
  std::uint32_t max_outstanding = 4;
  Addr weight_base = 0x0800'0000;
  Addr buffer_base = 0x0C00'0000;
  /// 0 = run forever; otherwise stop after this many frames.
  std::uint64_t max_frames = 0;
  /// Accept out-of-order completion (future-work platforms, §V-A).
  bool tolerate_out_of_order = false;
  /// If true the accelerator idles until start() is called (one frame per
  /// start, SW-task controlled operation).
  bool externally_triggered = false;
};

/// The quantized GoogleNet (Inception v1) schedule shipped with CHaiDNN:
/// 8-bit weights (~7 MB total), per-layer feature maps, ~1.6 GMAC per frame.
[[nodiscard]] std::vector<DnnLayer> googlenet_layers();

/// The quantized AlexNet schedule (CHaiDNN's other stock network): ~61 MB
/// of 8-bit weights dominated by the FC layers, ~0.7 GMAC per frame —
/// a far more weight-bandwidth-bound profile than GoogleNet.
[[nodiscard]] std::vector<DnnLayer> alexnet_layers();

class DnnAccelerator final : public AxiMasterBase, public ControllableHa {
 public:
  DnnAccelerator(std::string name, AxiLink& link, DnnConfig cfg);

  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;

  /// ControllableHa: runs one inference frame (externally_triggered mode).
  void start() override;
  [[nodiscard]] bool busy() const override { return phase_ != Phase::kDone; }

  [[nodiscard]] std::uint64_t frames_completed() const { return frames_; }
  [[nodiscard]] const std::vector<Cycle>& frame_completion_cycles() const {
    return frame_done_cycles_;
  }
  [[nodiscard]] bool finished() const {
    return cfg_.max_frames != 0 && frames_ >= cfg_.max_frames;
  }
  [[nodiscard]] const DnnConfig& config() const { return cfg_; }

  /// Total bus bytes one frame moves (reads + writes) — sanity checks.
  [[nodiscard]] std::uint64_t bytes_per_frame() const;

  /// Base metrics plus the frame counter and phase gauge.
  void register_metrics(MetricsRegistry& reg) override;

  void append_digest(StateDigest& d) const override;

 private:
  enum class Phase { kLoad, kCompute, kStore, kDone };

  void on_read_complete(const AddrReq& req, Cycle now) override;
  void on_write_complete(const AddrReq& req, Cycle now) override;
  void reset_master() override;

  void start_layer();
  void advance_after_store(Cycle now);
  /// Emits begin/end slices when phase_ changed since the last tick. Phase
  /// switches happen mid-tick, so the slice boundary lands on the next
  /// tick's timestamp (one cycle late, constant skew).
  void trace_phase_change(Cycle now);

  DnnConfig cfg_;
  std::size_t layer_idx_ = 0;
  Phase phase_ = Phase::kLoad;
  Phase traced_phase_ = Phase::kDone;  // last phase mirrored into the trace

  // Load phase bookkeeping.
  std::uint64_t load_total_ = 0;
  std::uint64_t load_issued_ = 0;
  std::uint64_t load_done_ = 0;
  // Compute phase: duration (from the layer's MACs) and the deadline-form
  // end cycle, so compute ticks are pure no-ops until the deadline (the
  // fast path can skip them wholesale).
  Cycle compute_cycles_ = 0;
  Cycle compute_end_ = 0;
  // Store phase.
  std::uint64_t store_total_ = 0;
  std::uint64_t store_issued_ = 0;
  std::uint64_t store_done_ = 0;

  std::uint64_t frames_ = 0;
  std::vector<Cycle> frame_done_cycles_;
};

}  // namespace axihc
