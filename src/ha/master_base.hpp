// Shared machinery for AXI master models (hardware accelerators).
//
// Subclasses decide *what* to issue (their acceleration job); this base
// handles the AXI mechanics every master shares: pushing AR/AW, streaming W
// beats at one per cycle, draining R and B, tracking outstanding
// transactions against a configurable limit, and collecting per-transaction
// latency statistics.
//
// Ordering: by default the master asserts the in-order completion contract
// of today's platforms (§V-A "Compatibility") — responses must arrive in
// issue order. Constructed with `allow_out_of_order = true`, it instead
// matches responses by AXI ID (burst-granular reordering across IDs, the
// paper's future-work platform model).
//
// All HAs in the paper follow the shared-memory paradigm of §II: an AXI
// master port for data and an AXI-Lite-like slave port for control. The
// control side is modelled at a higher level (see src/hypervisor); this base
// models the master port.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "axi/axi.hpp"
#include "obs/audit_hooks.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "sim/component.hpp"
#include "sim/trace.hpp"
#include "stats/stats.hpp"

namespace axihc {

/// Aggregate traffic/latency statistics of one master.
struct MasterStats {
  std::uint64_t reads_issued = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Completions carrying an error response (SLVERR/DECERR). Failed
  /// transactions are also counted in *_completed: they terminate normally
  /// at the protocol level, the error is in the response code. Transactions
  /// abandoned by abandon_in_flight() (port decoupled under the HA) are
  /// counted here too, but never complete.
  std::uint64_t reads_failed = 0;
  std::uint64_t writes_failed = 0;
  /// Responses that matched no in-flight transaction and were sunk. Zero in
  /// a healthy system; nonzero after a recovery reset, when responses for
  /// abandoned transactions arrive at a master that no longer knows them
  /// (the decoupler cannot shield the HA once the port is recoupled).
  std::uint64_t stray_r_beats = 0;
  std::uint64_t stray_b_resps = 0;
  /// Latency distributions in log-bucketed histograms (obs/histogram.hpp):
  /// masters live for the whole run, so retaining every sample
  /// (stats/stats.hpp LatencyStats) grows without bound on hot paths.
  /// count/min/max/mean/sum stay exact; percentiles are bucket-resolution
  /// (<= ~3.1% high). Tests needing exact percentiles keep LatencyStats on
  /// their own bounded collections.
  LogHistogram read_latency;   // AR issue -> final R beat
  LogHistogram write_latency;  // AW issue -> B response
};

class AxiMasterBase : public Component {
 public:
  static constexpr std::uint32_t kDefaultMaxOutstanding = 8;

  AxiMasterBase(std::string name, AxiLink& link,
                std::uint32_t max_outstanding_reads = kDefaultMaxOutstanding,
                std::uint32_t max_outstanding_writes = kDefaultMaxOutstanding,
                bool allow_out_of_order = false);

  void reset() override;

  /// Abandons every in-flight transaction and restarts the job engine,
  /// keeping the cumulative statistics. This is the software-visible HA
  /// reset of the recovery loop: while its port was decoupled the
  /// interconnect grounded the HA's signals, so responses for anything
  /// in flight will never arrive — exactly as under dynamic partial
  /// reconfiguration, the HA is reset before the hypervisor recouples the
  /// port. Abandoned transactions count as failed.
  void abandon_in_flight();

  [[nodiscard]] const MasterStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t outstanding_reads() const {
    return static_cast<std::uint32_t>(reads_in_flight_.size());
  }
  [[nodiscard]] std::uint32_t outstanding_writes() const {
    return static_cast<std::uint32_t>(writes_in_flight_.size());
  }
  [[nodiscard]] bool idle() const {
    return reads_in_flight_.empty() && writes_in_flight_.empty() &&
           w_backlog_.empty();
  }

  /// Observability: error completions (and subclass milestones) become
  /// trace events. nullptr (the default) disables the hooks.
  void set_trace(EventTrace* trace) { trace_ = trace; }

  /// Latency auditor hook: every completed transaction (read final beat,
  /// write B response) is reported with its original request and failure
  /// flag. `port` identifies this master's interconnect slave port.
  /// nullptr (the default) disables at one branch per completion.
  void set_latency_audit(LatencyAuditHooks* audit, PortIndex port) {
    audit_ = audit;
    audit_port_ = port;
  }

  /// Registers traffic counters and outstanding-transaction gauges with
  /// `reg`. Virtual so subclasses can append their own (jobs done, frames).
  virtual void register_metrics(MetricsRegistry& reg);

  /// Masters touch only their own state and their link's channels.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  void append_digest(StateDigest& d) const override;

 protected:
  /// True when an AR can be pushed this cycle without exceeding the
  /// outstanding-read limit.
  [[nodiscard]] bool can_issue_read() const;

  /// Issues a read burst. Requires can_issue_read().
  void issue_read(Addr addr, BeatCount beats, Cycle now);

  [[nodiscard]] bool can_issue_write() const;

  /// Issues a write burst whose beats carry `fill_seed + beat_index` as
  /// data. Requires can_issue_write().
  void issue_write(Addr addr, BeatCount beats, Cycle now,
                   std::uint64_t fill_seed = 0);

  /// Issues a write burst with explicit per-beat data (size must equal
  /// `beats`). Requires can_issue_write().
  void issue_write_data(Addr addr, const std::vector<std::uint64_t>& data,
                        Cycle now);

  /// Moves one W beat into the channel and drains R/B. Subclasses call this
  /// once per tick, after deciding what to issue.
  void pump(Cycle now);

  /// True when pump(now) would be a no-op this cycle: no W beat can move and
  /// nothing is waiting on R or B. Subclasses use this in their
  /// next_activity() certificates.
  [[nodiscard]] bool pump_idle() const {
    return (w_backlog_.empty() || !link_.w.can_push()) &&
           !link_.r.can_pop() && !link_.b.can_pop();
  }

  /// Hook: called for every read-data beat received.
  virtual void on_read_beat(const RBeat& beat, Cycle now);

  /// Hook: called when the final beat of a read burst arrives.
  virtual void on_read_complete(const AddrReq& req, Cycle now);

  /// Hook: called when a write burst's B response arrives.
  virtual void on_write_complete(const AddrReq& req, Cycle now);

  /// Subclass reset hook (base reset() calls it after clearing its state).
  virtual void reset_master() {}

  /// AXI QoS value stamped on every request this master issues (AxQOS).
  void set_qos(std::uint8_t qos) { qos_ = qos; }

  /// Beats-per-word helper: all masters here use the 64-bit data bus.
  static constexpr std::uint8_t kBusSizeLog2 = 3;
  static constexpr std::uint64_t kBusBytes = 1u << kBusSizeLog2;

  /// Master-side IDs stay below 2^16 so interconnect ID-extension modes can
  /// prepend the port number (IDs wrap, skipping 0).
  static constexpr TxnId kIdLimit = 1u << 16;

  [[nodiscard]] bool tracing() const {
    return trace_ != nullptr && trace_->enabled();
  }
  [[nodiscard]] EventTrace* trace() { return trace_; }

 private:
  struct InFlight {
    AddrReq req;
    BeatCount beats_left = 0;
    bool error = false;  // any beat so far carried SLVERR/DECERR
  };

  TxnId next_id();
  /// Index in reads_in_flight_ the R beat belongs to (0 when in-order;
  /// ID-matched when out-of-order is allowed). kStraySlot when the beat
  /// matches nothing in flight — a stale response to a reset master.
  static constexpr std::size_t kStraySlot = static_cast<std::size_t>(-1);
  std::size_t read_slot_for(const RBeat& beat);
  std::size_t write_slot_for(const BResp& resp);

  AxiLink& link_;
  std::uint32_t max_or_;
  std::uint32_t max_ow_;
  bool allow_ooo_;
  std::uint8_t qos_ = 0;
  TxnId next_id_ = 1;

  std::deque<InFlight> reads_in_flight_;
  std::deque<InFlight> writes_in_flight_;  // beats_left unused; B order
  std::deque<WBeat> w_backlog_;

  MasterStats stats_;
  EventTrace* trace_ = nullptr;
  LatencyAuditHooks* audit_ = nullptr;
  PortIndex audit_port_ = 0;
};

}  // namespace axihc
