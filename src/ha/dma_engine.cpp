#include "ha/dma_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace axihc {

namespace {
/// Beats needed for `bytes` at the 64-bit bus width, capped to the burst.
BeatCount beats_for(std::uint64_t remaining_bytes, BeatCount burst_beats) {
  const std::uint64_t beats = (remaining_bytes + 7) / 8;
  return static_cast<BeatCount>(
      std::min<std::uint64_t>(beats, burst_beats));
}
}  // namespace

DmaEngine::DmaEngine(std::string name, AxiLink& link, DmaConfig cfg)
    : AxiMasterBase(std::move(name), link, cfg.max_outstanding,
                    cfg.max_outstanding, cfg.tolerate_out_of_order),
      cfg_(cfg),
      armed_(!cfg.externally_triggered) {
  AXIHC_CHECK(cfg_.bytes_per_job > 0);
  AXIHC_CHECK(cfg_.burst_beats >= 1 && cfg_.burst_beats <= kMaxAxi4BurstBeats);
}

void DmaEngine::start() {
  AXIHC_CHECK_MSG(cfg_.externally_triggered,
                  name() << ": start() is only for externally_triggered mode");
  AXIHC_CHECK_MSG(!armed_, name() << ": start() while busy");
  read_issued_bytes_ = read_done_bytes_ = 0;
  write_issued_bytes_ = write_done_bytes_ = 0;
  armed_ = true;
}

void DmaEngine::reset_master() {
  read_issued_bytes_ = read_done_bytes_ = 0;
  write_issued_bytes_ = write_done_bytes_ = 0;
  jobs_done_ = 0;
  armed_ = !cfg_.externally_triggered;
  job_slice_open_ = false;
  job_done_cycles_.clear();
  copy_buffer_.clear();
}

void DmaEngine::append_digest(StateDigest& d) const {
  AxiMasterBase::append_digest(d);
  d.mix(jobs_done_);
  d.mix(read_issued_bytes_);
  d.mix(read_done_bytes_);
  d.mix(write_issued_bytes_);
  d.mix(write_done_bytes_);
  d.mix(static_cast<std::uint64_t>(armed_));
  for (Cycle c : job_done_cycles_) d.mix(static_cast<std::uint64_t>(c));
}

void DmaEngine::register_metrics(MetricsRegistry& reg) {
  AxiMasterBase::register_metrics(reg);
  reg.add_counter(name() + ".jobs_done", &jobs_done_);
}

bool DmaEngine::read_stream_active() const {
  return cfg_.mode != DmaMode::kWrite;
}

bool DmaEngine::write_stream_active() const {
  return cfg_.mode != DmaMode::kRead;
}

void DmaEngine::tick(Cycle now) {
  if (armed_ && !finished()) {
    if (!job_slice_open_ && tracing()) {
      trace()->record_begin(now, name(), "job");
      job_slice_open_ = true;
    }
    // Issue read bursts back-to-back until the job's read half is fully
    // requested.
    if (read_stream_active() && read_issued_bytes_ < cfg_.bytes_per_job &&
        can_issue_read()) {
      const BeatCount beats =
          beats_for(cfg_.bytes_per_job - read_issued_bytes_, cfg_.burst_beats);
      issue_read(cfg_.read_base + read_issued_bytes_, beats, now);
      read_issued_bytes_ += std::uint64_t{beats} * kBusBytes;
    }

    // Issue write bursts. In kCopy mode data must come from completed reads;
    // in the independent modes it is a synthetic fill pattern.
    if (write_stream_active() && write_issued_bytes_ < cfg_.bytes_per_job &&
        can_issue_write()) {
      const BeatCount beats = beats_for(
          cfg_.bytes_per_job - write_issued_bytes_, cfg_.burst_beats);
      if (cfg_.mode == DmaMode::kCopy) {
        if (copy_buffer_.size() >= beats) {
          std::vector<std::uint64_t> data(copy_buffer_.begin(),
                                          copy_buffer_.begin() + beats);
          copy_buffer_.erase(copy_buffer_.begin(),
                             copy_buffer_.begin() + beats);
          issue_write_data(cfg_.write_base + write_issued_bytes_, data, now);
          write_issued_bytes_ += std::uint64_t{beats} * kBusBytes;
        }
      } else {
        issue_write(cfg_.write_base + write_issued_bytes_, beats, now,
                    /*fill_seed=*/write_issued_bytes_);
        write_issued_bytes_ += std::uint64_t{beats} * kBusBytes;
      }
    }
  }

  pump(now);
}

Cycle DmaEngine::next_activity(Cycle now) const {
  if (!pump_idle()) return now;
  if (armed_ && !finished()) {
    if (tracing() && !job_slice_open_) return now;  // job slice opens next tick
    if (read_stream_active() && read_issued_bytes_ < cfg_.bytes_per_job &&
        can_issue_read()) {
      return now;
    }
    if (write_stream_active() && write_issued_bytes_ < cfg_.bytes_per_job &&
        can_issue_write()) {
      if (cfg_.mode != DmaMode::kCopy) return now;
      const BeatCount beats = beats_for(
          cfg_.bytes_per_job - write_issued_bytes_, cfg_.burst_beats);
      if (copy_buffer_.size() >= beats) return now;
    }
  }
  // Blocked on backpressure or on responses: only another component's
  // progress (a channel refilling/draining) can change that.
  return kNoCycle;
}

void DmaEngine::on_read_beat(const RBeat& beat, Cycle) {
  if (cfg_.mode == DmaMode::kCopy) copy_buffer_.push_back(beat.data);
}

void DmaEngine::on_read_complete(const AddrReq& req, Cycle now) {
  read_done_bytes_ += burst_bytes(req);
  maybe_finish_job(now);
}

void DmaEngine::on_write_complete(const AddrReq& req, Cycle now) {
  write_done_bytes_ += burst_bytes(req);
  maybe_finish_job(now);
}

void DmaEngine::maybe_finish_job(Cycle now) {
  const bool reads_done =
      !read_stream_active() || read_done_bytes_ >= cfg_.bytes_per_job;
  const bool writes_done =
      !write_stream_active() || write_done_bytes_ >= cfg_.bytes_per_job;
  if (!reads_done || !writes_done) return;

  ++jobs_done_;
  job_done_cycles_.push_back(now);
  if (job_slice_open_) {
    if (tracing()) trace()->record_end(now, name(), "job");
    job_slice_open_ = false;
  }
  if (cfg_.externally_triggered) {
    // Idle until the SW-task programs the next job (interrupt raised by
    // the control slave on this busy->idle edge).
    armed_ = false;
    return;
  }
  if (finished()) return;

  // Re-arm for the next job (continuous operation, as when a SW-task
  // immediately re-programs the DMA).
  read_issued_bytes_ = read_done_bytes_ = 0;
  write_issued_bytes_ = write_done_bytes_ = 0;
}

}  // namespace axihc
