#include "ha/trace_player.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

TracePlayer::TracePlayer(std::string name, AxiLink& link,
                         std::vector<TraceEntry> trace,
                         std::uint32_t max_outstanding)
    : AxiMasterBase(std::move(name), link, max_outstanding, max_outstanding),
      trace_(std::move(trace)) {
  for (std::size_t i = 1; i < trace_.size(); ++i) {
    AXIHC_CHECK_MSG(trace_[i - 1].issue_at <= trace_[i].issue_at,
                    "trace must be sorted by issue cycle");
  }
}

void TracePlayer::reset_master() {
  next_ = 0;
  slipped_ = 0;
}

void TracePlayer::tick(Cycle now) {
  if (next_ < trace_.size()) {
    const TraceEntry& e = trace_[next_];
    if (now >= e.issue_at) {
      const bool can = e.is_write ? can_issue_write() : can_issue_read();
      if (can) {
        if (now > e.issue_at) ++slipped_;
        if (e.is_write) {
          issue_write(e.addr, e.beats, now, /*fill_seed=*/e.addr);
        } else {
          issue_read(e.addr, e.beats, now);
        }
        ++next_;
      }
    }
  }
  pump(now);
}

Cycle TracePlayer::next_activity(Cycle now) const {
  if (!pump_idle()) return now;
  if (next_ < trace_.size()) {
    const TraceEntry& e = trace_[next_];
    if (now < e.issue_at) return e.issue_at;  // next scheduled request
    const bool can = e.is_write ? can_issue_write() : can_issue_read();
    if (can) return now;
  }
  return kNoCycle;  // trace drained, or blocked on backpressure/responses
}

}  // namespace axihc
