// Trace-driven AXI master: replays a recorded sequence of (cycle, R/W,
// address, beats) requests with cycle-accurate issue times (see
// axi/trace_format.hpp for the format and the AxiMonitor for recording).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/trace_format.hpp"
#include "ha/master_base.hpp"

namespace axihc {

class TracePlayer final : public AxiMasterBase {
 public:
  /// Replays `trace` (must be sorted by issue_at; verified). A request is
  /// issued at its recorded cycle, or as soon after as backpressure and the
  /// outstanding limit allow (in order).
  TracePlayer(std::string name, AxiLink& link, std::vector<TraceEntry> trace,
              std::uint32_t max_outstanding = kDefaultMaxOutstanding);

  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;

  [[nodiscard]] std::size_t issued() const { return next_; }
  [[nodiscard]] bool finished() const {
    return next_ >= trace_.size() && idle();
  }
  /// Requests that could not be issued at their recorded cycle
  /// (backpressure slip — a measure of how contended the replay was).
  [[nodiscard]] std::uint64_t slipped() const { return slipped_; }

 private:
  void reset_master() override;

  std::vector<TraceEntry> trace_;
  std::size_t next_ = 0;
  std::uint64_t slipped_ = 0;
};

}  // namespace axihc
